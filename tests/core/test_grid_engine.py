"""Stacked grid engine: equivalence, invalidation, and dispatch scaling.

The vectorized sweep engine's contract is *bit-identity* with the
per-tile reference loop under the deterministic engine mode
(``column_independent_apply``), noisy physics included — every test here
runs twin identically-seeded chips, one per engine, and compares raw
bits.  Under the default BLAS mode the batched kernels may legally differ
from the per-slice ones in the last ulp, so those combinations assert a
tight tolerance instead.
"""

import numpy as np
import pytest

from repro.analog import determinism
from repro.analog.opamp import OpAmpParams
from repro.analog.topologies import AMCMode
from repro.converters.adc import ADCParams
from repro.converters.dac import DACParams
from repro.core.errors import GramcError
from repro.core.pool import MacroPool, PoolConfig
from repro.core.solver import GramcSolver
from repro.core.tiled import TiledOperator
from repro.devices.constants import DeviceStack, VariabilityParams
from repro.programming.levels import LevelMap
from repro.workloads.matrices import block_dominant

N = 100
TILE = 32  # 100 = 3×32 + 4: a ragged 4×4 grid exercising the padding
COLUMNS = 3


def _pool_config(noisy: bool) -> PoolConfig:
    if noisy:
        # Every per-call randomness source on: analog amplifier noise plus
        # converter noise/INL — the stacked path must consume each macro's
        # stream draw-for-draw like the per-tile loop.
        return PoolConfig(
            num_macros=40,
            rows=TILE,
            cols=TILE,
            level_map=LevelMap(num_levels=256),
            dac=DACParams(bits=10, inl_lsb=0.4, noise_sigma=3e-4),
            adc=ADCParams(bits=10, noise_sigma=3e-4, offset=1e-4),
        )
    return PoolConfig(
        num_macros=40,
        rows=TILE,
        cols=TILE,
        level_map=LevelMap(num_levels=256),
        stack=DeviceStack(variability=VariabilityParams(read_noise_sigma=0.0)),
        opamp=OpAmpParams(noise_sigma=0.0),
        dac=DACParams(bits=10, noise_sigma=0.0),
        adc=ADCParams(bits=10, noise_sigma=0.0),
    )


def _solver(noisy: bool, seed: int = 77) -> GramcSolver:
    return GramcSolver(
        pool=MacroPool(_pool_config(noisy), rng=np.random.default_rng(seed)),
        rng=np.random.default_rng(7),
    )


def _problem(seed: int = 3) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    matrix = block_dominant(N, TILE, rng=rng)
    b = rng.uniform(-1, 1, (N, COLUMNS))
    return matrix, b


def _twin_solve(method: str, noisy: bool, **solve_kwargs):
    """The same ragged-grid solve on twin chips, one per engine."""
    matrix, b = _problem()
    results = []
    for engine in ("stacked", "pertile"):
        solver = _solver(noisy)
        op = solver.compile(matrix, AMCMode.INV)
        assert isinstance(op, TiledOperator)
        assert op.block_slices[-1] == slice(96, 100)  # ragged trailing edge
        result = op.solve(b, method=method, engine=engine, **solve_kwargs)
        results.append(result)
        op.close()
    return results


class TestEquivalence:
    @pytest.mark.parametrize("method", ["jacobi", "gauss-seidel"])
    @pytest.mark.parametrize("noisy", [False, True], ids=["noiseless", "noisy"])
    def test_bitwise_under_deterministic_mode(self, method, noisy):
        with determinism.column_independent_apply(True):
            stacked, pertile = _twin_solve(method, noisy)
        assert np.array_equal(stacked.value, pertile.value)
        assert stacked.sweeps == pertile.sweeps
        assert stacked.attempts == pertile.attempts
        assert stacked.converged == pertile.converged
        assert np.array_equal(stacked.input_scales, pertile.input_scales)
        assert np.array_equal(stacked.per_column_attempts, pertile.per_column_attempts)
        assert np.array_equal(stacked.column_saturated, pertile.column_saturated)

    @pytest.mark.parametrize("method", ["jacobi", "gauss-seidel"])
    @pytest.mark.parametrize("noisy", [False, True], ids=["noiseless", "noisy"])
    def test_tolerance_under_blas_mode(self, method, noisy):
        with determinism.column_independent_apply(False):
            stacked, pertile = _twin_solve(method, noisy)
        scale = float(np.linalg.norm(pertile.value))
        assert float(np.linalg.norm(stacked.value - pertile.value)) <= 1e-6 * scale
        assert stacked.sweeps == pertile.sweeps

    def test_vector_rhs_bitwise(self):
        matrix, b = _problem()
        with determinism.column_independent_apply(True):
            values = []
            for engine in ("stacked", "pertile"):
                solver = _solver(noisy=True)
                op = solver.compile(matrix, AMCMode.INV)
                values.append(op.solve(b[:, 0], engine=engine).value)
                op.close()
        assert np.array_equal(values[0], values[1])

    def test_unknown_engine_rejected(self):
        matrix, b = _problem()
        solver = _solver(noisy=False)
        op = solver.compile(matrix, AMCMode.INV)
        with pytest.raises(GramcError, match="engine"):
            op.solve(b, engine="vectorised")
        op.close()


class TestInvalidation:
    def test_set_g_f_retune_needs_no_rebuild(self):
        """Ladder moves between solves must neither rebuild stacks nor
        desynchronize the engines — g_f is read live from the registers."""
        matrix, b = _problem()
        with determinism.column_independent_apply(True):
            results = []
            for engine in ("stacked", "pertile"):
                solver = _solver(noisy=True)
                op = solver.compile(matrix, AMCMode.INV)
                op.solve(b, engine=engine)
                for handle in op._solve_handles():
                    tile = handle._tiles[0]
                    tile.primary.set_g_f(tile.primary.config.g_f * 2.0)
                    if tile.partner is not None:
                        tile.partner.set_g_f(tile.primary.config.g_f)
                results.append(op.solve(b, engine=engine))
                op.close()
        stacked, pertile = results
        assert np.array_equal(stacked.value, pertile.value)
        assert stacked.stack_rebuilds == 0

    def test_preemption_invalidates_exactly_the_stolen_slice(self):
        """The stale-cache regression: a fair-share preemption between
        solves must rebuild the preempted tile's slice — and only it —
        and the answer must stay bitwise equal to the per-tile engine
        under the same preemption."""
        matrix, b = _problem()
        with determinism.column_independent_apply(True):
            results = []
            for engine in ("stacked", "pertile"):
                solver = _solver(noisy=True)
                op = solver.compile(matrix, AMCMode.INV)
                op.solve(b, engine=engine)  # warm stacks + ranging
                op.unpin()  # preemption refuses pinned owners
                victim = op._off[(0, 1)]
                assert solver.pool.preempt(victim.owner_names()[0])
                result = op.solve(b, engine=engine)
                results.append(result)
                op.close()
        stacked, pertile = results
        assert np.array_equal(stacked.value, pertile.value)
        assert stacked.stack_rebuilds == 1
        assert pertile.stack_rebuilds == 0

    def test_steady_state_rebuilds_zero(self):
        matrix, b = _problem()
        solver = _solver(noisy=False)
        op = solver.compile(matrix, AMCMode.INV)
        first = op.solve(b)
        second = op.solve(b)
        assert first.stack_rebuilds == op.block_count  # initial stack build
        assert second.stack_rebuilds == 0
        op.close()


class TestDispatchScaling:
    def _grid_solver(self) -> GramcSolver:
        solver = GramcSolver(
            pool=MacroPool(
                PoolConfig(num_macros=40, rows=TILE, cols=TILE),
                rng=np.random.default_rng(5),
            ),
            rng=np.random.default_rng(9),
        )
        solver.max_attempts = 1  # freeze ranging: pure sweep kernel counts
        return solver

    @pytest.mark.parametrize("n", [64, 128], ids=["2x2", "4x4"])
    def test_jacobi_sweep_costs_constant_dispatches(self, n):
        """A stacked Jacobi sweep is 3 kernels — off-diagonal positive
        plane, off-diagonal negative plane, batched diagonal solve —
        independent of how many tiles the grid holds.  Sweep 1 reads the
        all-zero initial iterate, so both MVM kernels are skipped
        (A·0 ≡ 0) and only the diagonal solve runs."""
        rng = np.random.default_rng(11)
        matrix = block_dominant(n, TILE, rng=rng)
        b = rng.uniform(-1, 1, (n, 4))
        solver = self._grid_solver()
        op = solver.compile(matrix, AMCMode.INV)
        result = op.solve(b, method="jacobi", engine="stacked")
        assert result.sweeps >= 1
        assert result.engine_dispatches == 3 * result.sweeps - 2
        op.close()

    def test_pertile_dispatches_scale_with_tiles(self):
        rng = np.random.default_rng(11)
        matrix = block_dominant(128, TILE, rng=rng)
        b = rng.uniform(-1, 1, (128, 4))
        solver = self._grid_solver()
        op = solver.compile(matrix, AMCMode.INV)
        result = op.solve(b, method="jacobi", engine="pertile")
        # 4×4 grid: 12 coupling MVMs + 4 diagonal solves per sweep,
        # minus the 12 zero-source MVMs skipped on sweep 1.
        assert result.engine_dispatches == 16 * result.sweeps - 12
        op.close()

    def test_chip_stats_carry_the_counters(self):
        rng = np.random.default_rng(11)
        matrix = block_dominant(64, TILE, rng=rng)
        b = rng.uniform(-1, 1, (64, 2))
        from repro.system.stats import ChipStats

        stats = ChipStats()
        solver = GramcSolver(
            pool=MacroPool(
                PoolConfig(num_macros=40, rows=TILE, cols=TILE),
                rng=np.random.default_rng(5),
            ),
            rng=np.random.default_rng(9),
            stats=stats,
        )
        op = solver.compile(matrix, AMCMode.INV)
        result = op.solve(b)
        assert stats.engine_dispatches == result.engine_dispatches
        assert stats.stack_rebuilds == result.stack_rebuilds
        assert "engine_dispatches" in stats.summary()
        assert "stack_rebuilds" in stats.summary()
        op.close()
