"""Unit tests for pulse descriptions and staircase generators."""

import pytest

from repro.devices.constants import WriteVerifyParams
from repro.programming.pulses import (
    PulseKind,
    reset_pulse,
    reset_staircase,
    set_pulse,
    set_staircase,
)


@pytest.fixture()
def params() -> WriteVerifyParams:
    return WriteVerifyParams()


class TestPulseFactories:
    def test_set_pulse_terminals(self, params):
        pulse = set_pulse(0.7, params)
        assert pulse.kind is PulseKind.SET
        assert pulse.terminals() == (params.v_set, 0.0, 0.7)
        assert pulse.width == params.pulse_width

    def test_reset_pulse_terminals(self, params):
        pulse = reset_pulse(0.8, params)
        assert pulse.kind is PulseKind.RESET
        assert pulse.terminals() == (0.0, 0.8, params.vg_reset)

    def test_pulses_are_frozen(self, params):
        pulse = set_pulse(0.7, params)
        with pytest.raises(AttributeError):
            pulse.v_g = 1.0  # type: ignore[misc]


class TestStaircases:
    def test_set_staircase_monotone_gate(self, params):
        pulses = set_staircase(params)
        voltages = [p.v_g for p in pulses]
        assert all(b > a for a, b in zip(voltages, voltages[1:]))
        assert voltages[0] == pytest.approx(params.vg_start)
        assert voltages[-1] <= params.vg_max + 1e-9

    def test_reset_staircase_monotone_sl(self, params):
        pulses = reset_staircase(params)
        voltages = [p.v_sl for p in pulses]
        assert all(b > a for a, b in zip(voltages, voltages[1:]))
        assert voltages[-1] <= params.vsl_max + 1e-9

    def test_step_override_changes_count(self, params):
        fine = set_staircase(params, v_g_step=0.005)
        coarse = set_staircase(params, v_g_step=0.02)
        assert len(fine) > 2 * len(coarse)

    def test_start_override(self, params):
        pulses = set_staircase(params, start=0.8)
        assert pulses[0].v_g == pytest.approx(0.8)
