"""Unit tests for programming traces (the Fig. 1 record structure)."""

import numpy as np
import pytest

from repro.programming.levels import LevelMap
from repro.programming.pulses import PulseKind
from repro.programming.traces import ProgrammingTrace


def _trace(conductances) -> ProgrammingTrace:
    trace = ProgrammingTrace(LevelMap())
    for index, g in enumerate(conductances):
        trace.record(PulseKind.SET, 0.5 + 0.01 * index, g)
    return trace


class TestBasics:
    def test_len_and_pulse_numbers(self):
        trace = _trace([1e-6, 2e-6, 3e-6])
        assert len(trace) == 3
        np.testing.assert_array_equal(trace.pulse_numbers, [1, 2, 3])

    def test_levels_fractional(self):
        level_map = LevelMap()
        trace = _trace([level_map.level_to_conductance(5)])
        assert trace.levels[0] == pytest.approx(5.0)

    def test_reset_depth_inverts(self):
        level_map = LevelMap()
        trace = _trace([level_map.level_to_conductance(15)])
        assert trace.reset_depth_levels[0] == pytest.approx(0.0)
        trace2 = _trace([level_map.level_to_conductance(0)])
        assert trace2.reset_depth_levels[0] == pytest.approx(15.0)


class TestReachAndMonotone:
    def test_pulses_to_reach_level_upward(self):
        level_map = LevelMap()
        gs = [level_map.level_to_conductance(k) for k in (0, 3, 7, 12, 15)]
        trace = _trace(gs)
        assert trace.pulses_to_reach_level(7.0) == 3
        assert trace.pulses_to_reach_level(15.0) == 5
        assert trace.pulses_to_reach_level(15.5) is None

    def test_pulses_to_reach_level_downward(self):
        level_map = LevelMap()
        gs = [level_map.level_to_conductance(k) for k in (15, 10, 5, 0)]
        trace = _trace(gs)
        assert trace.pulses_to_reach_level(5.0, from_above=True) == 3

    def test_monotone_detection(self):
        level_map = LevelMap()
        up = _trace([level_map.level_to_conductance(k) for k in (0, 2, 4, 8)])
        assert up.is_monotone()
        assert not up.is_monotone(decreasing=True)

    def test_monotone_allows_slack(self):
        level_map = LevelMap()
        # A 0.2-level dip (read noise) should not break monotonicity.
        gs = [
            level_map.level_to_conductance(4),
            level_map.level_to_conductance(4) - 0.2 * level_map.step,
            level_map.level_to_conductance(6),
        ]
        assert _trace(gs).is_monotone(slack=0.25)

    def test_empty_trace_is_monotone(self):
        assert _trace([]).is_monotone()
