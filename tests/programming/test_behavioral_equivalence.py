"""Fidelity of the fast behavioural programmer against the physical path.

DESIGN.md promises that bulk array programming (the behavioural model) is
statistically equivalent to running the pulse-level write-verify controller
per cell.  These tests quantify that: both paths must land inside the same
tolerance band around the target, with comparable spread.
"""

import numpy as np
import pytest

from repro.devices.cell import OneT1R
from repro.devices.constants import DEFAULT_STACK
from repro.programming.levels import LevelMap
from repro.programming.write_verify import BehavioralProgrammer, WriteVerifyController

_LEVEL_MAP = LevelMap()
_TOL = DEFAULT_STACK.write_verify.tolerance * _LEVEL_MAP.step


@pytest.fixture(scope="module")
def physical_errors(shared_estimator) -> np.ndarray:
    controller = WriteVerifyController(
        DEFAULT_STACK, rng=np.random.default_rng(5), estimator=shared_estimator
    )
    rng = np.random.default_rng(21)
    errors = []
    for _ in range(24):
        target = float(rng.uniform(8e-6, 95e-6))
        cell = OneT1R(DEFAULT_STACK)
        cell.rram.set_conductance(float(rng.uniform(1e-6, 110e-6)))
        result = controller.program_conductance(cell, target)
        errors.append(result.error)
    return np.array(errors)


@pytest.fixture(scope="module")
def behavioral_errors() -> np.ndarray:
    programmer = BehavioralProgrammer(DEFAULT_STACK, _LEVEL_MAP)
    rng = np.random.default_rng(22)
    targets = rng.uniform(8e-6, 95e-6, size=500)
    achieved = programmer.program(targets, rng)
    return achieved - targets


class TestEquivalence:
    def test_physical_path_stays_in_band(self, physical_errors):
        assert np.max(np.abs(physical_errors)) <= 2.5 * _TOL

    def test_behavioral_path_stays_in_band(self, behavioral_errors):
        # Tolerance band plus the c2c lognormal tail.
        assert np.max(np.abs(behavioral_errors)) <= 3.0 * _TOL + 0.1 * 95e-6 * 0.02 * 4

    def test_spreads_comparable(self, physical_errors, behavioral_errors):
        """Same order of magnitude of programming spread on both paths."""
        physical_std = np.std(physical_errors)
        behavioral_std = np.std(behavioral_errors)
        assert 0.2 <= behavioral_std / physical_std <= 5.0

    def test_behavioral_bias_small(self, behavioral_errors):
        assert abs(np.mean(behavioral_errors)) <= _TOL

    def test_behavioral_never_below_floor(self):
        programmer = BehavioralProgrammer(DEFAULT_STACK, _LEVEL_MAP)
        rng = np.random.default_rng(3)
        achieved = programmer.program(np.full(100, 1e-6), rng)
        assert np.all(achieved >= 0.8 * _LEVEL_MAP.g_min)
