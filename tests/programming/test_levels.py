"""Unit and property tests for level maps, quantizers and bit slicing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.programming.levels import (
    LevelMap,
    MatrixQuantizer,
    combine_bit_slices,
    split_bit_slices,
)


class TestLevelMap:
    def test_defaults_match_paper(self):
        level_map = LevelMap()
        assert level_map.num_levels == 16
        assert level_map.bits == 4
        assert level_map.g_min == pytest.approx(1e-6)
        assert level_map.g_max == pytest.approx(100e-6)

    def test_step(self):
        level_map = LevelMap()
        assert level_map.step == pytest.approx(99e-6 / 15)

    def test_level_to_conductance_endpoints(self):
        level_map = LevelMap()
        assert level_map.level_to_conductance(0) == pytest.approx(1e-6)
        assert level_map.level_to_conductance(15) == pytest.approx(100e-6)

    def test_level_roundtrip(self):
        level_map = LevelMap()
        levels = np.arange(16)
        conductances = level_map.level_to_conductance(levels)
        np.testing.assert_array_equal(level_map.conductance_to_level(conductances), levels)

    def test_out_of_range_level_rejected(self):
        level_map = LevelMap()
        with pytest.raises(ValueError):
            level_map.level_to_conductance(16)
        with pytest.raises(ValueError):
            level_map.level_to_conductance(-1)

    def test_conductance_to_level_clips(self):
        level_map = LevelMap()
        assert level_map.conductance_to_level(0.0) == 0
        assert level_map.conductance_to_level(1.0) == 15

    def test_quantize_conductance_idempotent(self):
        level_map = LevelMap()
        g = np.linspace(1e-6, 100e-6, 33)
        once = level_map.quantize_conductance(g)
        twice = level_map.quantize_conductance(once)
        np.testing.assert_allclose(once, twice)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LevelMap(num_levels=1)
        with pytest.raises(ValueError):
            LevelMap(g_min=2e-6, g_max=1e-6)

    @given(g=st.floats(min_value=1e-6, max_value=100e-6))
    @settings(max_examples=60, deadline=None)
    def test_quantization_error_bounded_by_half_step(self, g):
        level_map = LevelMap()
        snapped = float(level_map.quantize_conductance(g))
        assert abs(snapped - g) <= level_map.step / 2.0 + 1e-18


class TestMatrixQuantizer:
    def test_fit_puts_peak_on_top_level(self):
        matrix = np.array([[0.0, 3.0], [1.5, 0.75]])
        quantizer = MatrixQuantizer.fit(matrix)
        levels = quantizer.to_levels(matrix)
        assert levels.max() == 15

    def test_reconstruct_inverts_levels(self):
        matrix = np.array([[0.0, 3.0], [1.5, 0.75]])
        quantizer = MatrixQuantizer.fit(matrix)
        rebuilt = quantizer.reconstruct(quantizer.to_levels(matrix))
        assert np.max(np.abs(rebuilt - matrix)) <= quantizer.scale / 2.0 + 1e-12

    def test_rejects_negative_values(self):
        quantizer = MatrixQuantizer.fit(np.ones((2, 2)))
        with pytest.raises(ValueError):
            quantizer.to_levels(np.array([[-1.0, 0.0], [0.0, 0.0]]))

    def test_zero_matrix(self):
        quantizer = MatrixQuantizer.fit(np.zeros((3, 3)))
        assert np.all(quantizer.to_levels(np.zeros((3, 3))) == 0)

    def test_conductance_to_value_roundtrip(self):
        matrix = np.abs(np.random.default_rng(0).standard_normal((6, 6)))
        quantizer = MatrixQuantizer.fit(matrix)
        conductances = quantizer.to_conductances(matrix)
        values = quantizer.conductance_to_value(conductances)
        assert np.max(np.abs(values - matrix)) <= quantizer.scale / 2.0 + 1e-12

    @given(
        matrix=arrays(
            dtype=np.float64,
            shape=(4, 4),
            elements=st.floats(min_value=0.0, max_value=100.0),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_levels_always_in_range(self, matrix):
        quantizer = MatrixQuantizer.fit(matrix)
        levels = quantizer.to_levels(matrix)
        assert levels.min() >= 0 and levels.max() <= 15


class TestBitSlicing:
    def test_split_combine_roundtrip(self):
        values = np.arange(256)
        msb, lsb = split_bit_slices(values)
        np.testing.assert_array_equal(combine_bit_slices(msb, lsb), values.astype(float))

    def test_nibble_ranges(self):
        values = np.arange(256)
        msb, lsb = split_bit_slices(values)
        assert msb.max() == 15 and lsb.max() == 15
        assert msb.min() == 0 and lsb.min() == 0

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            split_bit_slices(np.array([1.5]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            split_bit_slices(np.array([256]))
        with pytest.raises(ValueError):
            split_bit_slices(np.array([-1]))

    def test_rejects_mismatched_widths(self):
        with pytest.raises(ValueError):
            split_bit_slices(np.array([1]), total_bits=8, slice_bits=3)

    @given(
        values=arrays(
            dtype=np.int64, shape=(8,), elements=st.integers(min_value=0, max_value=255)
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        msb, lsb = split_bit_slices(values)
        np.testing.assert_array_equal(
            combine_bit_slices(msb, lsb), values.astype(float)
        )
