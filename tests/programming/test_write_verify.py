"""Closed-loop write-verify tests (the paper's §II-A state machine)."""

import numpy as np
import pytest

from repro.devices.cell import OneT1R
from repro.devices.constants import DEFAULT_STACK
from repro.programming.levels import LevelMap
from repro.programming.write_verify import VgEstimator, WriteVerifyController


@pytest.fixture(scope="module")
def controller(shared_estimator) -> WriteVerifyController:
    return WriteVerifyController(
        DEFAULT_STACK, rng=np.random.default_rng(3), estimator=shared_estimator
    )


def _cell(conductance: float | None = None) -> OneT1R:
    cell = OneT1R(DEFAULT_STACK)
    if conductance is None:
        cell.rram.reset_state()
    else:
        cell.rram.set_conductance(conductance)
    return cell


class TestVgEstimator:
    def test_monotone_lookup(self, shared_estimator):
        v_low = shared_estimator.gate_voltage_for(5e-6)
        v_high = shared_estimator.gate_voltage_for(80e-6)
        assert v_high > v_low

    def test_covers_top_of_window(self, shared_estimator):
        assert shared_estimator.max_conductance >= 100e-6


class TestClosedLoop:
    @pytest.mark.parametrize("level", [0, 1, 4, 8, 12, 15])
    def test_programs_each_level_within_band(self, controller, level):
        level_map = LevelMap()
        result = controller.program_level(_cell(), level)
        assert result.success
        tolerance = DEFAULT_STACK.write_verify.tolerance * level_map.step
        assert abs(result.error) <= 2.0 * tolerance

    def test_programs_down_from_high_state(self, controller):
        result = controller.program_conductance(_cell(conductance=110e-6), 20e-6)
        assert result.success
        assert result.reset_pulses > 0

    def test_already_in_band_needs_no_pulses(self, controller):
        level_map = LevelMap()
        target = float(level_map.level_to_conductance(8))
        cell = _cell()
        first = controller.program_conductance(cell, target)
        assert first.success
        again = controller.program_conductance(cell, target)
        assert again.total_pulses == 0

    def test_pulse_budget_respected(self, controller):
        result = controller.program_conductance(_cell(), 60e-6)
        assert result.total_pulses <= DEFAULT_STACK.write_verify.max_pulses

    def test_result_accounting(self, controller):
        result = controller.program_conductance(_cell(), 40e-6)
        assert result.verify_reads >= result.total_pulses  # one read per pulse + initial
        assert result.total_pulses == result.set_pulses + result.reset_pulses

    def test_typical_pulse_count_is_modest(self, controller):
        """The estimator jump-start keeps per-cell cost well under budget."""
        counts = []
        rng = np.random.default_rng(11)
        for _ in range(8):
            target = float(rng.uniform(10e-6, 95e-6))
            counts.append(controller.program_conductance(_cell(), target).total_pulses)
        assert np.mean(counts) < 25.0
