"""Unit tests for the crossbar array."""

import numpy as np
import pytest

from repro.arrays.crossbar import CrossbarArray
from repro.devices.constants import (
    DEFAULT_STACK,
    DeviceStack,
    G_MAX,
    G_MIN,
    VariabilityParams,
)
from repro.programming.levels import LevelMap


def _array(rows=16, cols=16, seed=0, **kwargs) -> CrossbarArray:
    return CrossbarArray(
        DEFAULT_STACK, rows, cols, rng=np.random.default_rng(seed), **kwargs
    )


class TestProgramming:
    def test_initial_state_is_reset(self):
        array = _array()
        assert np.all(array.conductances() == pytest.approx(G_MIN))

    def test_program_targets_lands_in_band(self):
        array = _array()
        level_map = LevelMap()
        targets = np.full((16, 16), 50e-6)
        array.program_targets(targets)
        achieved = array.conductances()
        tolerance = DEFAULT_STACK.write_verify.tolerance * level_map.step
        # band + c2c spread
        assert np.max(np.abs(achieved - targets)) <= tolerance + 4 * 0.02 * 50e-6

    def test_program_levels(self):
        array = _array()
        levels = np.random.default_rng(1).integers(0, 16, size=(16, 16))
        array.program_levels(levels)
        level_map = LevelMap()
        achieved_levels = level_map.conductance_to_level(array.conductances())
        # Tolerance band + c2c spread can flip a borderline cell by one level,
        # but never more.
        assert np.all(np.abs(achieved_levels - levels) <= 1)
        assert np.mean(achieved_levels == levels) > 0.75

    def test_shape_mismatch_rejected(self):
        array = _array()
        with pytest.raises(ValueError):
            array.program_targets(np.zeros((4, 4)))

    def test_active_region_programming(self):
        array = _array()
        array.select_region(4, 4, row_offset=8, col_offset=8)
        array.program_targets(np.full((4, 4), 80e-6))
        region = array.conductances()
        assert region.shape == (4, 4)
        assert np.all(region > 60e-6)
        # The rest of the array is untouched.
        array.select_region(16, 16)
        full = array.conductances()
        assert full[0, 0] == pytest.approx(G_MIN)

    def test_cells_programmed_counter(self):
        array = _array()
        array.program_targets(np.full((16, 16), 10e-6))
        assert array.cells_programmed == 256


class TestReads:
    def test_read_currents_match_matmul(self):
        array = _array()
        targets = np.random.default_rng(2).uniform(5e-6, 90e-6, size=(16, 16))
        array.program_targets(targets)
        v = np.random.default_rng(3).uniform(-0.5, 0.5, 16)
        currents = array.read_currents(v, noisy=False)
        np.testing.assert_allclose(currents, array.conductances() @ v, rtol=1e-9)

    def test_read_currents_shape_check(self):
        array = _array()
        with pytest.raises(ValueError):
            array.read_currents(np.zeros(5))

    def test_noisy_read_differs_per_call(self):
        array = _array()
        array.program_targets(np.full((16, 16), 50e-6))
        a = array.conductances(noisy=True)
        b = array.conductances(noisy=True)
        assert not np.array_equal(a, b)

    def test_wire_resistance_degrades_conductance(self):
        clean = _array()
        resistive = _array(wire_resistance=5.0)
        targets = np.full((16, 16), 80e-6)
        clean.program_targets(targets)
        resistive.program_targets(targets)
        # Same seed → same programming draw; parasitics only reduce values.
        assert np.all(resistive.conductances(noisy=False) < clean.conductances(noisy=False))


class TestFaults:
    def test_stuck_faults_survive_programming(self):
        stack = DeviceStack(
            variability=VariabilityParams(stuck_on_rate=0.1, stuck_off_rate=0.1)
        )
        array = CrossbarArray(stack, 32, 32, rng=np.random.default_rng(5))
        array.program_targets(np.full((32, 32), 50e-6))
        conductances = array.conductances(noisy=False)
        faults = array.fault_map
        assert np.all(conductances[faults == 1] == G_MAX)
        assert np.all(conductances[faults == -1] == G_MIN)
        assert array.fault_fraction() == pytest.approx(0.2, abs=0.06)

    def test_fault_map_is_copy(self):
        array = _array()
        fault_map = array.fault_map
        fault_map[0, 0] = 1
        assert array.fault_map[0, 0] == 0
