"""Unit tests for the WL/BL/SL driver banks."""

import numpy as np
import pytest

from repro.arrays.drivers import DriverBank, DriverError, LineDriver


class TestLineDriver:
    def test_selection(self):
        driver = LineDriver("WL", 8)
        driver.select(slice(2, 5))
        np.testing.assert_array_equal(driver.selected_indices, [2, 3, 4])

    def test_select_all(self):
        driver = LineDriver("WL", 4)
        driver.select_all()
        assert driver.selected_indices.size == 4

    def test_validate_grounds_deselected_lines(self):
        driver = LineDriver("BL", 4)
        driver.select(slice(0, 2))
        out = driver.validate(np.array([1.0, 1.0, 1.0, 1.0]))
        np.testing.assert_array_equal(out, [1.0, 1.0, 0.0, 0.0])

    def test_validate_rejects_wrong_shape(self):
        driver = LineDriver("BL", 4)
        with pytest.raises(DriverError):
            driver.validate(np.zeros(3))

    def test_validate_rejects_rail_violation(self):
        driver = LineDriver("SL", 2, v_min=-1.0, v_max=2.0)
        driver.select_all()
        with pytest.raises(DriverError):
            driver.validate(np.array([0.0, 2.5]))
        with pytest.raises(DriverError):
            driver.validate(np.array([-1.5, 0.0]))

    def test_drive_count_increments(self):
        driver = LineDriver("WL", 2)
        driver.select_all()
        driver.validate(np.zeros(2))
        driver.validate(np.zeros(2))
        assert driver.drive_count == 2


class TestDriverBank:
    def test_default_region_is_full_array(self):
        bank = DriverBank(16, 8)
        assert bank.active_rows.size == 16
        assert bank.active_cols.size == 8

    def test_region_with_offset(self):
        bank = DriverBank(16, 16)
        bank.select_region(4, 6, row_offset=2, col_offset=10)
        np.testing.assert_array_equal(bank.active_rows, np.arange(2, 6))
        np.testing.assert_array_equal(bank.active_cols, np.arange(10, 16))

    def test_wl_and_sl_share_rows(self):
        bank = DriverBank(8, 8)
        bank.select_region(3, 8)
        np.testing.assert_array_equal(bank.wl.selected_indices, bank.sl.selected_indices)

    def test_region_overflow_rejected(self):
        bank = DriverBank(8, 8)
        with pytest.raises(DriverError):
            bank.select_region(4, 4, row_offset=6)
        with pytest.raises(DriverError):
            bank.select_region(9, 1)

    def test_empty_region_rejected(self):
        bank = DriverBank(8, 8)
        with pytest.raises(DriverError):
            bank.select_region(0, 4)
