"""Unit and property tests for signed-matrix conductance mappings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.arrays.mapping import DifferentialMapping, OffsetMapping
from repro.programming.levels import LevelMap


def _random_matrix(seed: int, shape=(6, 6)) -> np.ndarray:
    return np.random.default_rng(seed).uniform(-2.0, 2.0, size=shape)


class TestDifferentialMapping:
    def test_planes_are_in_conductance_window(self):
        mapping = DifferentialMapping.from_matrix(_random_matrix(0))
        level_map = LevelMap()
        for plane in (mapping.g_pos, mapping.g_neg):
            assert plane.min() >= level_map.g_min - 1e-15
            assert plane.max() <= level_map.g_max + 1e-15

    def test_decode_error_bounded_by_quantization(self):
        matrix = _random_matrix(1)
        mapping = DifferentialMapping.from_matrix(matrix)
        quantization_step = mapping.value_scale * mapping.level_map.step
        assert np.max(np.abs(mapping.decode() - matrix)) <= quantization_step / 2.0 + 1e-12

    def test_only_one_plane_active_per_element(self):
        """A coefficient is positive OR negative — never both planes > g_min."""
        matrix = _random_matrix(2)
        mapping = DifferentialMapping.from_matrix(matrix)
        level_map = mapping.level_map
        pos_active = mapping.g_pos > level_map.g_min + 1e-12
        neg_active = mapping.g_neg > level_map.g_min + 1e-12
        assert not np.any(pos_active & neg_active)

    def test_gmin_offset_cancels(self):
        """Zero coefficients decode to exactly zero (both planes at g_min)."""
        matrix = np.zeros((4, 4))
        matrix[0, 0] = 1.0  # set the scale
        mapping = DifferentialMapping.from_matrix(matrix)
        decoded = mapping.decode()
        assert decoded[1, 1] == pytest.approx(0.0, abs=1e-15)

    def test_shape_property(self):
        mapping = DifferentialMapping.from_matrix(_random_matrix(3, (4, 7)))
        assert mapping.shape == (4, 7)

    @given(
        matrix=arrays(
            dtype=np.float64,
            shape=(5, 5),
            elements=st.floats(min_value=-10.0, max_value=10.0),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_decode_error_property(self, matrix):
        mapping = DifferentialMapping.from_matrix(matrix)
        quantization_step = mapping.value_scale * mapping.level_map.step
        assert np.max(np.abs(mapping.decode() - matrix)) <= quantization_step / 2.0 + 1e-9


class TestOffsetMapping:
    def test_single_plane_in_window(self):
        mapping = OffsetMapping.from_matrix(_random_matrix(4))
        level_map = LevelMap()
        assert mapping.g.min() >= level_map.g_min - 1e-15
        assert mapping.g.max() <= level_map.g_max + 1e-15

    def test_decode_error_bounded(self):
        matrix = _random_matrix(5)
        mapping = OffsetMapping.from_matrix(matrix)
        quantization_step = mapping.value_scale * mapping.level_map.step
        assert np.max(np.abs(mapping.decode() - matrix)) <= quantization_step / 2.0 + 1e-12

    def test_mvm_correction_recovers_product(self):
        """Raw conductance MVM + rank-one correction ≈ A·x."""
        matrix = _random_matrix(6)
        mapping = OffsetMapping.from_matrix(matrix)
        x = np.random.default_rng(7).uniform(-1, 1, matrix.shape[1])
        raw = mapping.value_scale * (mapping.g @ x)
        corrected = raw + mapping.mvm_correction(x)
        reference = mapping.decode() @ x
        np.testing.assert_allclose(corrected, reference, atol=1e-12)

    def test_nonnegative_matrix_keeps_zero_shift(self):
        matrix = np.abs(_random_matrix(8))
        mapping = OffsetMapping.from_matrix(matrix)
        assert mapping.shift == pytest.approx(matrix.min())
