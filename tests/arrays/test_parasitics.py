"""Parasitic-wire models: closed form vs exact nodal solve."""

import numpy as np
import pytest

from repro.arrays.parasitics import NodalCrossbarSolver, effective_conductances


class TestEffectiveConductances:
    def test_zero_resistance_is_identity(self):
        g = np.random.default_rng(0).uniform(1e-6, 1e-4, size=(8, 8))
        np.testing.assert_array_equal(effective_conductances(g, 0.0), g)

    def test_degradation_monotone_in_resistance(self):
        g = np.full((8, 8), 8e-5)
        weak = effective_conductances(g, 1.0)
        strong = effective_conductances(g, 10.0)
        assert np.all(strong < weak)
        assert np.all(weak < g)

    def test_far_corner_degrades_most(self):
        g = np.full((8, 8), 8e-5)
        eff = effective_conductances(g, 5.0)
        # Cell (0, cols-1) has the most bit-line segments AND most SL segments.
        assert eff[0, 7] == eff.min()

    def test_negative_resistance_rejected(self):
        with pytest.raises(ValueError):
            effective_conductances(np.ones((2, 2)), -1.0)


class TestNodalSolver:
    def test_matches_ideal_at_zero_resistance(self):
        g = np.random.default_rng(1).uniform(1e-6, 1e-4, size=(4, 4))
        solver = NodalCrossbarSolver(g, 0.0)
        v = np.random.default_rng(2).uniform(-0.3, 0.3, 4)
        np.testing.assert_allclose(solver.output_currents(v), g @ v, rtol=1e-12)

    def test_small_resistance_close_to_ideal(self):
        g = np.random.default_rng(3).uniform(1e-6, 1e-4, size=(4, 4))
        solver = NodalCrossbarSolver(g, 0.1)
        v = np.full(4, 0.2)
        ideal = g @ v
        exact = solver.output_currents(v)
        assert np.linalg.norm(exact - ideal) / np.linalg.norm(ideal) < 0.01

    def test_closed_form_tracks_nodal_solver(self):
        """The series approximation stays within a few percent of exact."""
        rng = np.random.default_rng(4)
        g = rng.uniform(2e-5, 9e-5, size=(6, 6))
        wire = 2.0
        v = rng.uniform(0.0, 0.3, 6)
        exact = NodalCrossbarSolver(g, wire).output_currents(v)
        approx = effective_conductances(g, wire) @ v
        assert np.linalg.norm(approx - exact) / np.linalg.norm(exact) < 0.05

    def test_input_shape_check(self):
        solver = NodalCrossbarSolver(np.ones((3, 3)) * 1e-5, 1.0)
        with pytest.raises(ValueError):
            solver.output_currents(np.zeros(2))

    def test_currents_scale_linearly(self):
        g = np.full((3, 3), 5e-5)
        solver = NodalCrossbarSolver(g, 3.0)
        v = np.array([0.1, 0.2, 0.3])
        i1 = solver.output_currents(v)
        i2 = solver.output_currents(2.0 * v)
        np.testing.assert_allclose(i2, 2.0 * i1, rtol=1e-9)
