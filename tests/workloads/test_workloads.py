"""Workload generator tests."""

import numpy as np
import pytest

from repro.workloads.matrices import (
    diagonally_dominant,
    gram,
    symmetric_with_spectrum,
    wishart,
)
from repro.workloads.regression import FEATURE_NAMES, pm25_like


class TestWishart:
    def test_symmetric_positive_definite(self):
        matrix = wishart(16, rng=np.random.default_rng(0))
        np.testing.assert_allclose(matrix, matrix.T)
        assert np.min(np.linalg.eigvalsh(matrix)) > 0.0

    def test_reproducible(self):
        a = wishart(8, rng=np.random.default_rng(5))
        b = wishart(8, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_rejects_singular_dof(self):
        with pytest.raises(ValueError):
            wishart(8, dof=4)

    def test_diagonal_near_one(self):
        matrix = wishart(64, dof=512, rng=np.random.default_rng(1))
        assert np.mean(np.diag(matrix)) == pytest.approx(1.0, abs=0.15)


class TestGram:
    def test_rank_bounded_by_data_width(self):
        data = np.random.default_rng(2).standard_normal((16, 3))
        matrix = gram(data)
        assert np.linalg.matrix_rank(matrix) == 3

    def test_psd(self):
        data = np.random.default_rng(3).standard_normal((10, 6))
        eigenvalues = np.linalg.eigvalsh(gram(data))
        assert np.min(eigenvalues) >= -1e-12


class TestDiagonallyDominant:
    def test_strict_dominance(self):
        matrix = diagonally_dominant(12, dominance=1.5, rng=np.random.default_rng(4))
        for i in range(12):
            off_diagonal = np.sum(np.abs(matrix[i])) - abs(matrix[i, i])
            assert abs(matrix[i, i]) > off_diagonal

    def test_rejects_weak_dominance(self):
        with pytest.raises(ValueError):
            diagonally_dominant(4, dominance=1.0)


class TestSpectrum:
    def test_prescribed_eigenvalues(self):
        target = np.array([5.0, 2.0, 1.0, 0.5])
        matrix = symmetric_with_spectrum(target, rng=np.random.default_rng(6))
        np.testing.assert_allclose(np.sort(np.linalg.eigvalsh(matrix)), np.sort(target), rtol=1e-9)

    def test_symmetric(self):
        matrix = symmetric_with_spectrum(np.arange(1.0, 6.0), rng=np.random.default_rng(7))
        np.testing.assert_allclose(matrix, matrix.T)


class TestPM25Like:
    def test_shape_matches_paper(self):
        task = pm25_like()
        assert task.shape == (128, 6)
        assert len(FEATURE_NAMES) == 6

    def test_standardised_design(self):
        task = pm25_like(rng=np.random.default_rng(8))
        np.testing.assert_allclose(task.design.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(task.design.std(axis=0), 1.0, rtol=1e-9)

    def test_solution_close_to_truth(self):
        task = pm25_like(rng=np.random.default_rng(9), noise_scale=0.05)
        fitted = task.solution()
        assert np.linalg.norm(fitted - task.true_weights) / np.linalg.norm(task.true_weights) < 0.2

    def test_conditioning_is_moderate(self):
        task = pm25_like(rng=np.random.default_rng(10))
        assert np.linalg.cond(task.design) < 50.0

    def test_residual_norm_at_solution_is_minimal(self):
        task = pm25_like(rng=np.random.default_rng(11))
        at_solution = task.residual_norm(task.solution())
        perturbed = task.residual_norm(task.solution() + 0.1)
        assert at_solution < perturbed
