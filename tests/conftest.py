"""Shared fixtures for the GRAMC test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pool import MacroPool, PoolConfig
from repro.core.solver import GramcSolver
from repro.devices.constants import (
    DEFAULT_STACK,
    DeviceStack,
    VariabilityParams,
)
from repro.programming.write_verify import VgEstimator


@pytest.fixture(scope="session")
def stack() -> DeviceStack:
    """The calibrated default device stack."""
    return DEFAULT_STACK


@pytest.fixture(scope="session")
def quiet_stack() -> DeviceStack:
    """A stack with all stochastic effects disabled (deterministic physics)."""
    return DeviceStack(
        variability=VariabilityParams(
            d2d_sigma=0.0, c2c_sigma=0.0, read_noise_sigma=0.0
        )
    )


@pytest.fixture(scope="session")
def shared_estimator(stack) -> VgEstimator:
    """One gate-voltage estimator reused across write-verify tests (slow to build)."""
    return VgEstimator(stack)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def small_pool() -> MacroPool:
    """An 8-macro pool of 32×32 arrays — fast enough for unit tests."""
    return MacroPool(
        PoolConfig(num_macros=8, rows=32, cols=32), rng=np.random.default_rng(99)
    )


@pytest.fixture()
def small_solver(small_pool) -> GramcSolver:
    return GramcSolver(pool=small_pool, rng=np.random.default_rng(17))


@pytest.fixture(scope="session")
def full_solver() -> GramcSolver:
    """A full 16×(128×128) chip solver for integration-scale tests."""
    return GramcSolver(
        pool=MacroPool(PoolConfig(), rng=np.random.default_rng(2025)),
        rng=np.random.default_rng(7),
    )
