"""Unit tests for the behavioural ADC."""

import numpy as np
import pytest

from repro.converters.adc import ADC, ADCParams


class TestSampling:
    def test_reconstruction_error_bounded(self):
        adc = ADC(ADCParams(bits=8, v_ref=1.0))
        v = np.linspace(-1, 1, 777)
        err = np.abs(adc.sample(v, noisy=False) - v)
        assert err.max() <= adc.lsb / 2 + 1e-12

    def test_clipping(self):
        adc = ADC(ADCParams(bits=8, v_ref=1.0))
        out = adc.sample(np.array([-3.0, 3.0]), noisy=False)
        np.testing.assert_allclose(out, [-1.0, 1.0])

    def test_codes_range(self):
        adc = ADC(ADCParams(bits=4, v_ref=1.0))
        codes = adc.codes(np.linspace(-1.5, 1.5, 100), noisy=False)
        assert codes.min() == 0
        assert codes.max() == 15

    def test_codes_match_sample(self):
        adc = ADC(ADCParams(bits=6, v_ref=1.0))
        v = np.linspace(-0.9, 0.9, 50)
        reconstructed = adc.sample(v, noisy=False)
        codes = adc.codes(v, noisy=False)
        np.testing.assert_allclose(codes * adc.lsb - 1.0, reconstructed, atol=1e-12)

    def test_offset_shifts_readings(self):
        adc = ADC(ADCParams(bits=12, offset=0.1))
        out = adc.sample(np.array([0.0]), noisy=False)
        assert out[0] == pytest.approx(0.1, abs=adc.lsb)

    def test_noise_dithers(self):
        adc = ADC(ADCParams(bits=12, noise_sigma=5e-3), rng=np.random.default_rng(0))
        a = adc.sample(np.full(200, 0.3))
        b = adc.sample(np.full(200, 0.3))
        assert not np.array_equal(a, b)


class TestClipDetector:
    def test_detects_out_of_range(self):
        adc = ADC(ADCParams(bits=8, v_ref=1.0))
        assert adc.clips(np.array([0.0, 1.2]))
        assert not adc.clips(np.array([0.0, 0.9]))

    def test_accounts_for_offset(self):
        adc = ADC(ADCParams(bits=8, v_ref=1.0, offset=0.2))
        assert adc.clips(np.array([0.9]))

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            ADC(ADCParams(bits=0))
