"""Unit tests for the behavioural DAC."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.converters.dac import DAC, DACParams


class TestQuantization:
    def test_lsb(self):
        dac = DAC(DACParams(bits=8, v_ref=1.0))
        assert dac.lsb == pytest.approx(2.0 / 255)

    def test_quantize_snaps_to_grid(self):
        dac = DAC(DACParams(bits=4, v_ref=1.0))
        values = dac.quantize_value(np.linspace(-1, 1, 37))
        codes = (values + 1.0) / dac.lsb
        np.testing.assert_allclose(codes, np.rint(codes), atol=1e-9)

    def test_quantize_clips_to_range(self):
        dac = DAC(DACParams(bits=8, v_ref=1.0))
        out = dac.quantize_value(np.array([-5.0, 5.0]))
        np.testing.assert_allclose(out, [-1.0, 1.0])

    def test_quantization_error_bounded(self):
        dac = DAC(DACParams(bits=8, v_ref=1.0))
        v = np.linspace(-1, 1, 999)
        err = np.abs(dac.quantize_value(v) - v)
        assert err.max() <= dac.lsb / 2 + 1e-12

    @given(v=st.floats(min_value=-1.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_idempotent(self, v):
        dac = DAC(DACParams(bits=6, v_ref=1.0))
        once = float(dac.quantize_value(np.array([v]))[0])
        twice = float(dac.quantize_value(np.array([once]))[0])
        assert once == pytest.approx(twice, abs=1e-12)


class TestNonIdealities:
    def test_inl_bow_is_zero_at_rails(self):
        dac = DAC(DACParams(bits=8, v_ref=1.0, inl_lsb=2.0))
        out = dac.convert(np.array([-1.0, 1.0]), noisy=False)
        np.testing.assert_allclose(out, [-1.0, 1.0], atol=1e-9)

    def test_inl_bow_maximal_midscale(self):
        dac = DAC(DACParams(bits=8, v_ref=1.0, inl_lsb=2.0))
        out = dac.convert(np.array([0.0]), noisy=False)
        # The bow rides on top of the quantized value (mid-scale sits half an
        # LSB off zero for an odd step count).
        quantized = float(dac.quantize_value(np.array([0.0]))[0])
        bow = out[0] - quantized
        assert bow == pytest.approx(2.0 * dac.lsb, rel=1e-2)

    def test_noise_applied_when_enabled(self):
        dac = DAC(DACParams(bits=8, noise_sigma=1e-3), rng=np.random.default_rng(0))
        a = dac.convert(np.full(100, 0.5))
        b = dac.convert(np.full(100, 0.5))
        assert not np.array_equal(a, b)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            DAC(DACParams(bits=0))
