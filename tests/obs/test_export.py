"""Exporters: JSONL spans, Chrome trace_event JSON, Prometheus text."""

from __future__ import annotations

import json

from repro.obs import trace
from repro.obs.export import chrome_trace, prometheus_text, spans_to_jsonl, write_chrome_trace
from repro.obs.registry import MetricsRegistry


def _traced_spans():
    """A small two-level span tree recorded on a throwaway memory tracer."""
    previous = trace.get_tracer()
    try:
        tracer = trace.configure("memory")
        with trace.span("solve", mode="inv"):
            with trace.span("sweep", sweep=1):
                pass
        return tracer.spans()
    finally:
        trace.set_tracer(previous)


class TestJsonl:
    def test_one_line_per_span(self):
        spans = _traced_spans()
        lines = spans_to_jsonl(spans).strip().split("\n")
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert {r["name"] for r in records} == {"sweep", "solve"}

    def test_line_schema(self):
        spans = _traced_spans()
        record = json.loads(spans_to_jsonl(spans).splitlines()[0])
        assert set(record) == {
            "name", "span_id", "parent_id", "thread", "start_us", "dur_us", "attrs",
        }
        assert record["dur_us"] >= 0

    def test_parent_linkage_round_trips(self):
        spans = _traced_spans()
        records = {r["name"]: r for r in map(json.loads, spans_to_jsonl(spans).splitlines())}
        assert records["sweep"]["parent_id"] == records["solve"]["span_id"]
        assert records["solve"]["parent_id"] is None


class TestChromeTrace:
    def test_document_schema(self):
        doc = chrome_trace(_traced_spans())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert phases == {"M", "X"}

    def test_complete_events_carry_span_identity(self):
        doc = chrome_trace(_traced_spans())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 2
        for event in events:
            assert set(event) >= {"name", "ts", "dur", "pid", "tid", "cat", "args"}
            assert "span_id" in event["args"] and "parent_id" in event["args"]
            assert event["cat"] == "gramc"
            assert event["dur"] >= 0  # microseconds

    def test_metadata_names_process_and_threads(self):
        doc = chrome_trace(_traced_spans(), process_name="chip")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert names == {"process_name", "thread_name"}
        process = next(e for e in meta if e["name"] == "process_name")
        assert process["args"]["name"] == "chip"

    def test_write_round_trips_as_json(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", _traced_spans())
        doc = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("solves_total", "completed solves").inc(3)
        registry.gauge("queue_depth", "pending requests").set(2)
        text = prometheus_text(registry)
        assert "# HELP solves_total completed solves" in text
        assert "# TYPE solves_total counter" in text
        assert "solves_total 3" in text
        assert "queue_depth 2" in text

    def test_labelled_samples(self):
        registry = MetricsRegistry()
        family = registry.counter("ops_total", "ops", label_names=("tenant",))
        family.labels("alice").inc()
        text = prometheus_text(registry)
        assert 'ops_total{tenant="alice"} 1' in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        family = registry.counter("ops_total", "ops", label_names=("path",))
        family.labels('a"b\\c').inc()
        text = prometheus_text(registry)
        assert 'ops_total{path="a\\"b\\\\c"} 1' in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "latency", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        text = prometheus_text(registry)
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="10"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_sum 55.5" in text
        assert "lat_seconds_count 3" in text
