"""Tracer semantics: nesting, disabled-path cost, cross-thread/task spans."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.obs import trace


@pytest.fixture()
def tracer():
    """A fresh enabled in-memory tracer installed for the test."""
    previous = trace.get_tracer()
    installed = trace.configure("memory")
    yield installed
    trace.set_tracer(previous)


class TestNesting:
    def test_parent_child_linkage(self, tracer):
        with trace.span("outer") as outer:
            with trace.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert trace.current_span() is outer
        assert trace.current_span() is None
        names = [s.name for s in tracer.spans()]
        assert names == ["inner", "outer"]  # finish order: children first

    def test_attrs_at_open_and_close(self, tracer):
        with trace.span("op", mode="inv") as sp:
            sp.set(attempts=3)
        (span,) = tracer.spans()
        assert span.attrs == {"mode": "inv", "attempts": 3}
        assert span.end_s >= span.start_s

    def test_span_survives_exception(self, tracer):
        with pytest.raises(ValueError):
            with trace.span("boom"):
                raise ValueError("x")
        (span,) = tracer.spans()
        assert span.name == "boom" and span.end_s is not None
        assert trace.current_span() is None

    def test_traced_decorator(self, tracer):
        @trace.traced("unit")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert [s.name for s in tracer.spans()] == ["unit"]


class TestDisabled:
    def test_disabled_yields_null_span(self):
        previous = trace.get_tracer()
        try:
            trace.configure(None)
            with trace.span("ignored") as sp:
                sp.set(anything=1)  # must be a harmless no-op
            assert trace.get_tracer().spans() == []
        finally:
            trace.set_tracer(previous)

    def test_disabled_context_is_shared_singleton(self):
        previous = trace.get_tracer()
        try:
            trace.configure(None)
            assert trace.span("a") is trace.span("b")
        finally:
            trace.set_tracer(previous)

    def test_begin_finish_null_safe(self):
        previous = trace.get_tracer()
        try:
            tracer = trace.configure(None)
            sp = tracer.begin("queue")
            tracer.finish(sp, wait_s=1.0)  # no-op span, no crash
            assert tracer.spans() == []
        finally:
            trace.set_tracer(previous)


class TestManualSpans:
    def test_begin_finish_records_span(self, tracer):
        sp = tracer.begin("queue", tenant="alice")
        tracer.finish(sp, wait_s=0.5)
        (span,) = tracer.spans()
        assert span.name == "queue"
        assert span.attrs == {"tenant": "alice", "wait_s": 0.5}

    def test_finish_is_idempotent(self, tracer):
        sp = tracer.begin("once")
        tracer.finish(sp)
        tracer.finish(sp)
        assert len(tracer.spans()) == 1

    def test_begin_inherits_current_parent(self, tracer):
        with trace.span("outer") as outer:
            sp = tracer.begin("queued")
        tracer.finish(sp)
        assert sp.parent_id == outer.span_id


class TestCrossThread:
    def test_adopt_bridges_thread(self, tracer):
        captured = {}

        with trace.span("window") as window:

            def chip_side():
                with tracer.adopt(window):
                    with trace.span("dispatch") as d:
                        captured["parent"] = d.parent_id

            worker = threading.Thread(target=chip_side)
            worker.start()
            worker.join()
        assert captured["parent"] == window.span_id

    def test_thread_without_adopt_is_root(self, tracer):
        captured = {}

        with trace.span("window"):

            def chip_side():
                with trace.span("orphan") as sp:
                    captured["parent"] = sp.parent_id

            worker = threading.Thread(target=chip_side)
            worker.start()
            worker.join()
        assert captured["parent"] is None


class TestCrossTask:
    def test_sibling_tasks_do_not_share_stacks(self, tracer):
        async def worker(name, results):
            with trace.span(name) as sp:
                await asyncio.sleep(0)
                results[name] = sp.parent_id

        async def main():
            results: dict = {}
            await asyncio.gather(worker("a", results), worker("b", results))
            return results

        results = asyncio.run(main())
        assert results == {"a": None, "b": None}


class TestConfigure:
    def test_off_specs(self):
        previous = trace.get_tracer()
        try:
            for spec in (None, False, "off", "0", "none", ""):
                assert trace.configure(spec).enabled is False
        finally:
            trace.set_tracer(previous)

    def test_on_specs(self):
        previous = trace.get_tracer()
        try:
            for spec in (True, "on", "1", "memory"):
                assert trace.configure(spec).enabled is True
        finally:
            trace.set_tracer(previous)

    def test_env_configuration(self):
        previous = trace.get_tracer()
        try:
            tracer = trace.configure_from_env({"REPRO_TRACE": "memory"})
            assert tracer.enabled
            tracer = trace.configure_from_env({})
            assert not tracer.enabled
        finally:
            trace.set_tracer(previous)

    def test_jsonl_spec(self, tmp_path):
        previous = trace.get_tracer()
        try:
            path = tmp_path / "spans.jsonl"
            tracer = trace.configure(f"jsonl:{path}")
            with trace.span("one"):
                pass
            tracer.close()
            assert path.exists() and '"name": "one"' in path.read_text()
        finally:
            trace.set_tracer(previous)
