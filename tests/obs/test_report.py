"""SolveCost arithmetic and the solve_breakdown attribution table."""

from __future__ import annotations

import pytest

from repro.obs.cost import CostAccumulator, SolveCost
from repro.obs.report import (
    COMPONENTS,
    format_breakdown,
    solve_breakdown,
    window_breakdown,
)


class TestSolveCost:
    def test_add_and_sub_are_fieldwise(self):
        a = SolveCost(analog_settling_s=1.0, dac_conversions=10, engine_macs=100)
        b = SolveCost(analog_settling_s=0.5, dac_conversions=4, engine_macs=40)
        total = a + b
        assert total.analog_settling_s == 1.5
        assert total.dac_conversions == 14
        assert total.engine_macs == 140
        back = total - b
        assert back == a

    def test_copy_is_independent(self):
        a = SolveCost(adc_conversions=3)
        b = a.copy()
        b.adc_conversions += 1
        assert a.adc_conversions == 3

    def test_scaled_rounds_integer_counters(self):
        cost = SolveCost(dac_conversions=10, analog_settling_s=1.0, refine_steps=3)
        share = cost.scaled(0.25)
        assert share.dac_conversions == 2  # round(2.5) banker's-rounds to 2
        assert isinstance(share.dac_conversions, int)
        assert share.analog_settling_s == pytest.approx(0.25)
        assert share.refine_steps == 1

    def test_accumulator_snapshot_delta(self):
        acc = CostAccumulator()
        acc.add_conversions(dac=5, adc=7)
        before = acc.snapshot()
        acc.add_conversions(dac=2)
        acc.add_engine_macs(64)
        acc.add_analog(amplifiers=8, settling_time=1e-6)
        delta = acc.delta(before)
        assert delta.dac_conversions == 2
        assert delta.adc_conversions == 0
        assert delta.engine_macs == 64
        assert delta.amp_seconds == pytest.approx(8e-6)

    def test_accumulator_ignores_none_settling(self):
        acc = CostAccumulator()
        acc.add_analog(amplifiers=8, settling_time=None)
        assert acc.total.analog_settling_s == 0.0


def _sample_cost() -> SolveCost:
    return SolveCost(
        analog_settling_s=2e-6,
        amp_seconds=1e-5,
        dac_conversions=256,
        adc_conversions=256,
        engine_macs=65536,
        refine_macs=16384,
        write_pulses=128,
        queue_wait_s=1e-4,
    )


class TestSolveBreakdown:
    def test_percentages_sum_to_100(self):
        breakdown = solve_breakdown(_sample_cost())
        time_pct = sum(row["time_pct"] for row in breakdown["components"])
        energy_pct = sum(row["energy_pct"] for row in breakdown["components"])
        assert time_pct == pytest.approx(100.0, abs=0.1)
        assert energy_pct == pytest.approx(100.0, abs=0.1)

    def test_component_order_and_domains(self):
        breakdown = solve_breakdown(_sample_cost())
        listed = [(row["component"], row["domain"]) for row in breakdown["components"]]
        assert listed == list(COMPONENTS)

    def test_analog_digital_separately_attributed(self):
        breakdown = solve_breakdown(_sample_cost())
        assert breakdown["analog_time_s"] > 0
        assert breakdown["digital_time_s"] > 0
        assert breakdown["wait_time_s"] == pytest.approx(1e-4)
        # Domains partition the total.
        assert (
            breakdown["analog_time_s"]
            + breakdown["digital_time_s"]
            + breakdown["mixed_time_s"]
            + breakdown["wait_time_s"]
        ) == pytest.approx(breakdown["total_time_s"])

    def test_queue_wait_has_no_energy(self):
        breakdown = solve_breakdown(_sample_cost())
        wait = next(r for r in breakdown["components"] if r["component"] == "queue_wait")
        assert wait["energy_J"] == 0.0

    def test_zero_cost_is_all_zero_not_nan(self):
        breakdown = solve_breakdown(SolveCost())
        assert breakdown["total_time_s"] == 0.0
        for row in breakdown["components"]:
            assert row["time_pct"] == 0.0 and row["energy_pct"] == 0.0

    def test_counters_round_trip(self):
        cost = _sample_cost()
        breakdown = solve_breakdown(cost)
        assert breakdown["counters"] == cost.as_dict()


class TestExtraction:
    def test_accepts_result_with_cost_attribute(self):
        class FakeResult:
            cost = _sample_cost()

        direct = solve_breakdown(_sample_cost())
        via_result = solve_breakdown(FakeResult())
        assert via_result["total_time_s"] == pytest.approx(direct["total_time_s"])

    def test_window_breakdown_sums_members(self):
        costs = [_sample_cost(), _sample_cost()]
        window = window_breakdown(costs)
        single = solve_breakdown(costs[0])
        assert window["total_time_s"] == pytest.approx(2 * single["total_time_s"])
        assert window["counters"]["dac_conversions"] == 512

    def test_rejects_costless_objects(self):
        with pytest.raises(TypeError):
            solve_breakdown(object())


class TestFormatBreakdown:
    def test_markdown_table_shape(self):
        table = format_breakdown(solve_breakdown(_sample_cost()))
        lines = table.splitlines()
        assert lines[0].startswith("| component | domain |")
        # Header + separator + one row per component + total row.
        assert sum(line.startswith("|") for line in lines) == 2 + len(COMPONENTS) + 1
        assert "analog" in table and "digital" in table
