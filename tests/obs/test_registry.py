"""MetricsRegistry: families, labels, histograms, conflict detection."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry


class TestCounters:
    def test_zero_label_counter_is_its_own_cell(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_labelled_counter_children(self):
        registry = MetricsRegistry()
        family = registry.counter("ops_total", "ops", label_names=("mode",))
        family.labels("inv").inc(2)
        family.labels(mode="mvm").inc()
        assert family.labels("inv").value == 2
        assert family.labels("mvm").value == 1

    def test_registry_caches_families(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "x")
        b = registry.counter("x_total", "x")
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("y_total", "y")
        with pytest.raises(ValueError):
            registry.gauge("y_total", "y")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("z_total", "z", label_names=("a",))
        with pytest.raises(ValueError):
            registry.counter("z_total", "z", label_names=("b",))


class TestGauges:
    def test_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "queue depth")
        gauge.set(7)
        gauge.inc(-2)
        assert gauge.value == 5


class TestHistograms:
    def test_observe_updates_aggregates(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", "latency")
        for value in (0.001, 0.01, 0.1):
            hist.observe(value)
        cell = hist._solo
        assert cell.count == 3
        assert cell.sum == pytest.approx(0.111)
        assert cell.min == pytest.approx(0.001)
        assert cell.max == pytest.approx(0.1)
        assert cell.mean == pytest.approx(0.111 / 3)

    def test_bucket_counts_are_cumulative_ready(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "h", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(50.0)
        cell = hist._solo
        # Per-bucket (non-cumulative) storage: one observation each in
        # (≤1], (1, 10] and the +Inf overflow.
        assert cell.buckets == (1.0, 10.0)
        assert cell.bucket_counts == [1, 1, 1]
        assert cell.count == 3


class TestSamples:
    def test_families_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "b")
        registry.counter("a_total", "a")
        assert [f.name for f in registry.families()] == ["a_total", "b_total"]

    def test_samples_sorted_by_label_values(self):
        registry = MetricsRegistry()
        family = registry.counter("t_total", "t", label_names=("tenant",))
        family.labels("zed").inc()
        family.labels("abe").inc()
        labels = [labels for labels, _ in family.samples()]
        assert labels == [{"tenant": "abe"}, {"tenant": "zed"}]
