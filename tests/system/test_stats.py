"""Chip statistics accounting tests."""

import pytest

from repro.system.stats import (
    ChipStats,
    ENERGY_ADC_CONVERSION,
    ENERGY_DAC_CONVERSION,
    ENERGY_WRITE_PULSE,
)


class TestCounters:
    def test_instruction_recording(self):
        stats = ChipStats()
        stats.record_instruction("EXE", cycles=8)
        stats.record_instruction("EXE", cycles=8)
        stats.record_instruction("NOP")
        assert stats.instructions["EXE"] == 2
        assert stats.digital_cycles == 17

    def test_solve_recording(self):
        stats = ChipStats()
        stats.record_solve("inv", amplifiers=256, settling_time=2e-6)
        assert stats.analog_solves["inv"] == 1
        assert stats.analog_solve_time == pytest.approx(2e-6)
        assert stats.amp_solve_integral == pytest.approx(256 * 2e-6)

    def test_solve_without_settling_time(self):
        stats = ChipStats()
        stats.record_solve("egv", amplifiers=128, settling_time=None)
        assert stats.analog_solves["egv"] == 1
        assert stats.analog_solve_time == 0.0

    def test_programming_estimate(self):
        stats = ChipStats()
        stats.record_programming(100, pulses_per_cell=9.0)
        assert stats.cells_programmed == 100
        assert stats.write_pulses == 900


class TestEstimates:
    def test_energy_composition(self):
        stats = ChipStats()
        stats.record_conversions(dac=10, adc=5)
        stats.record_programming(1, pulses_per_cell=2.0)
        expected = (
            10 * ENERGY_DAC_CONVERSION + 5 * ENERGY_ADC_CONVERSION + 2 * ENERGY_WRITE_PULSE
        )
        assert stats.estimated_energy() == pytest.approx(expected)

    def test_latency_composition(self):
        stats = ChipStats()
        stats.record_instruction("NOP", cycles=1000)
        stats.record_solve("mvm", amplifiers=16, settling_time=1e-6)
        assert stats.estimated_latency() == pytest.approx(1000 * 1e-9 + 1e-6)

    def test_summary_keys(self):
        summary = ChipStats().summary()
        for key in ("instructions", "analog_solves", "energy_J", "latency_s"):
            assert key in summary
