"""Chip statistics accounting tests."""

import pytest

from repro.system.stats import (
    ChipStats,
    DIGITAL_CYCLE_TIME,
    DIGITAL_MACS_PER_CYCLE,
    ENERGY_ADC_CONVERSION,
    ENERGY_DAC_CONVERSION,
    ENERGY_DIGITAL_CYCLE,
    ENERGY_WRITE_PULSE,
    ServiceStats,
    TenantCounters,
)


class TestCounters:
    def test_instruction_recording(self):
        stats = ChipStats()
        stats.record_instruction("EXE", cycles=8)
        stats.record_instruction("EXE", cycles=8)
        stats.record_instruction("NOP")
        assert stats.instructions["EXE"] == 2
        assert stats.digital_cycles == 17

    def test_solve_recording(self):
        stats = ChipStats()
        stats.record_solve("inv", amplifiers=256, settling_time=2e-6)
        assert stats.analog_solves["inv"] == 1
        assert stats.analog_solve_time == pytest.approx(2e-6)
        assert stats.amp_solve_integral == pytest.approx(256 * 2e-6)

    def test_solve_without_settling_time(self):
        stats = ChipStats()
        stats.record_solve("egv", amplifiers=128, settling_time=None)
        assert stats.analog_solves["egv"] == 1
        assert stats.analog_solve_time == 0.0

    def test_programming_estimate(self):
        stats = ChipStats()
        stats.record_programming(100, pulses_per_cell=9.0)
        assert stats.cells_programmed == 100
        assert stats.write_pulses == 900


class TestEstimates:
    def test_energy_composition(self):
        stats = ChipStats()
        stats.record_conversions(dac=10, adc=5)
        stats.record_programming(1, pulses_per_cell=2.0)
        expected = (
            10 * ENERGY_DAC_CONVERSION + 5 * ENERGY_ADC_CONVERSION + 2 * ENERGY_WRITE_PULSE
        )
        assert stats.estimated_energy() == pytest.approx(expected)

    def test_latency_composition(self):
        stats = ChipStats()
        stats.record_instruction("NOP", cycles=1000)
        stats.record_solve("mvm", amplifiers=16, settling_time=1e-6)
        assert stats.estimated_latency() == pytest.approx(1000 * 1e-9 + 1e-6)

    def test_summary_keys(self):
        summary = ChipStats().summary()
        for key in ("instructions", "analog_solves", "energy_J", "latency_s"):
            assert key in summary

    def test_energy_is_monotone_under_recording(self):
        """Every record_* call can only grow the energy estimate."""
        stats = ChipStats()
        last = stats.estimated_energy()
        for record in (
            lambda: stats.record_conversions(dac=16, adc=16),
            lambda: stats.record_solve("inv", amplifiers=64, settling_time=1e-6),
            lambda: stats.record_programming(32, pulses_per_cell=3.0),
            lambda: stats.record_instruction("EXE", cycles=100),
            lambda: stats.record_digital_work(4096),
            lambda: stats.record_refinement(steps=2, dispatches=2, macs=8192),
        ):
            record()
            current = stats.estimated_energy()
            assert current > last
            last = current

    def test_latency_is_monotone_under_recording(self):
        stats = ChipStats()
        last = stats.estimated_latency()
        for record in (
            lambda: stats.record_instruction("NOP", cycles=50),
            lambda: stats.record_solve("mvm", amplifiers=16, settling_time=2e-6),
            lambda: stats.record_digital_work(1024),
            lambda: stats.record_refinement(steps=1, dispatches=1, macs=2048),
        ):
            record()
            current = stats.estimated_latency()
            assert current > last
            last = current

    def test_refinement_feeds_energy_and_latency(self):
        """record_refinement's MACs land in the digital-cycle estimates."""
        stats = ChipStats()
        macs = 10 * DIGITAL_MACS_PER_CYCLE
        stats.record_refinement(steps=3, dispatches=2, macs=macs)
        assert stats.refine_steps == 3
        assert stats.refine_dispatches == 2
        assert stats.digital_cycles == 10
        assert stats.estimated_energy() == pytest.approx(10 * ENERGY_DIGITAL_CYCLE)
        assert stats.estimated_latency() == pytest.approx(10 * DIGITAL_CYCLE_TIME)


class TestTenantCounters:
    def test_as_dict_and_summary_share_keys(self):
        counters = TenantCounters()
        counters.submitted += 3
        counters.admitted += 2
        assert counters.summary() == counters.as_dict()
        assert set(counters.summary()) == set(counters.as_dict())
        assert counters.as_dict()["submitted"] == 3


class TestServiceStats:
    def test_coalescing_factor_zero_guard(self):
        """No dispatches yet: 0/0 must read 0.0, never raise."""
        stats = ServiceStats()
        assert stats.coalescing_factor == 0.0
        assert stats.summary()["coalescing_factor"] == 0.0

    def test_coalescing_factor_after_dispatch(self):
        stats = ServiceStats()
        stats.record_dispatch(["a", "b"], columns=8)
        stats.record_dispatch(["a"], columns=4)
        assert stats.coalescing_factor == pytest.approx(6.0)
        assert stats.tenant("a").engine_calls == 2
        assert stats.tenant("b").engine_calls == 1

    def test_summary_nests_tenant_tables(self):
        stats = ServiceStats()
        stats.tenant("alice").completed += 1
        summary = stats.summary()
        assert summary["tenants"]["alice"] == stats.tenant("alice").as_dict()

    def test_shared_registry_publishes_serve_counters(self):
        chip = ChipStats()
        stats = ServiceStats(registry=chip.registry)
        stats.record_dispatch(["a"], columns=4)
        names = {family.name for family in chip.registry.families()}
        assert "serve_engine_calls_total" in names
        assert "gramc_digital_cycles_total" in names
