"""Assembler tests: parsing, labels, operand forms, errors."""

import pytest

from repro.system.assembler import AssemblyError, assemble, disassemble
from repro.system.isa import Opcode, unpack_partners, unpack_pool_meta, unpack_pool_shape


class TestBasicParsing:
    def test_simple_program(self):
        program = assemble(
            """
            ; configure and run
            CFG  m0, 16
            SETN 8
            HALT
            """
        )
        assert [i.op for i in program] == [Opcode.CFG, Opcode.SETN, Opcode.HALT]
        assert program[0].arg0 == 0
        assert program[0].arg1 == 16
        assert program[1].arg1 == 8

    def test_comments_and_blank_lines(self):
        program = assemble("# comment\n\nNOP ; trailing\n")
        assert len(program) == 1

    def test_macro_operands(self):
        program = assemble("WRV m7, 100, 64")
        assert program[0].arg0 == 7

    def test_hex_operands(self):
        program = assemble("SETN 0x10")
        assert program[0].arg1 == 16


class TestLabels:
    def test_forward_and_backward_labels(self):
        program = assemble(
            """
            start:
                NOP
                BNE start
                JMP end
                NOP
            end:
                HALT
            """
        )
        assert program[1].arg1 == 0  # start
        assert program[2].arg1 == 4  # end

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("a:\nNOP\na:\nNOP")


class TestComplexOperands:
    def test_exe_partners(self):
        program = assemble("EXE m0, 0, 8, partner=m1, partner_t=m2")
        partner, partner_t, partner_neg, partner_t_neg = unpack_partners(program[0].arg3)
        assert (partner, partner_t) == (1, 2)
        assert partner_neg is None and partner_t_neg is None

    def test_pool_encoding(self):
        program = assemble("POOL 200, 100, 6, 24, 24, kind=avg")
        kind_max, channels = unpack_pool_meta(program[0].arg0)
        assert not kind_max and channels == 6
        assert unpack_pool_shape(program[0].arg3) == (24, 24)

    def test_adds_default_shift(self):
        program = assemble("ADDS 10, 20, 30")
        assert program[0].arg0 == 4

    def test_adds_custom_shift(self):
        program = assemble("ADDS 10, 20, 30, shift=8")
        assert program[0].arg0 == 8


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("FROB 1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects"):
            assemble("CFG m0")

    def test_bad_operand(self):
        with pytest.raises(AssemblyError, match="cannot parse"):
            assemble("SETN banana")


class TestDisassembler:
    def test_listing_contains_mnemonics(self):
        program = assemble("NOP\nHALT")
        listing = disassemble(program)
        assert "NOP" in listing and "HALT" in listing
        assert listing.splitlines()[0].startswith("   0:")
