"""ISA encode/decode and packing tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system.isa import (
    Instruction,
    Opcode,
    pack_partners,
    pack_pool_meta,
    pack_pool_shape,
    unpack_partners,
    unpack_pool_meta,
    unpack_pool_shape,
)


class TestInstructionEncoding:
    def test_roundtrip_example(self):
        instruction = Instruction(Opcode.EXE, arg0=3, arg1=100, arg2=64, arg3=0x1234)
        assert Instruction.decode(instruction.encode()) == instruction

    @given(
        op=st.sampled_from(list(Opcode)),
        arg0=st.integers(min_value=0, max_value=255),
        arg1=st.integers(min_value=0, max_value=65535),
        arg2=st.integers(min_value=0, max_value=65535),
        arg3=st.integers(min_value=0, max_value=65535),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, op, arg0, arg1, arg2, arg3):
        instruction = Instruction(op, arg0, arg1, arg2, arg3)
        assert Instruction.decode(instruction.encode()) == instruction

    def test_field_range_validation(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.NOP, arg0=256)
        with pytest.raises(ValueError):
            Instruction(Opcode.NOP, arg1=70000)

    def test_decode_rejects_bad_word(self):
        with pytest.raises(ValueError):
            Instruction.decode(-1)


class TestPartnerPacking:
    def test_roundtrip_all_fields(self):
        packed = pack_partners(partner=3, partner_t=0, partner_neg=14, partner_t_neg=7)
        assert unpack_partners(packed) == (3, 0, 14, 7)

    def test_none_fields(self):
        packed = pack_partners(partner_t=5)
        assert unpack_partners(packed) == (None, 5, None, None)

    def test_empty(self):
        assert unpack_partners(pack_partners()) == (None, None, None, None)

    def test_id_15_rejected(self):
        """Nibble encoding reserves 0 for 'none', so ids stop at 14."""
        with pytest.raises(ValueError):
            pack_partners(partner=15)


class TestPoolPacking:
    def test_shape_roundtrip(self):
        assert unpack_pool_shape(pack_pool_shape(12, 24)) == (12, 24)

    def test_meta_roundtrip(self):
        assert unpack_pool_meta(pack_pool_meta(True, 6)) == (True, 6)
        assert unpack_pool_meta(pack_pool_meta(False, 127)) == (False, 127)

    def test_shape_limits(self):
        with pytest.raises(ValueError):
            pack_pool_shape(0, 4)
        with pytest.raises(ValueError):
            pack_pool_shape(4, 256)

    def test_meta_limits(self):
        with pytest.raises(ValueError):
            pack_pool_meta(True, 0)
        with pytest.raises(ValueError):
            pack_pool_meta(True, 128)
