"""Global/output buffer tests."""

import numpy as np
import pytest

from repro.system.buffers import BufferError, GlobalBuffer, OutputBuffer


class TestGlobalBuffer:
    def test_write_read_roundtrip(self):
        gb = GlobalBuffer(64)
        values = np.array([1.5, -2.25, 3.0])
        gb.write(10, values)
        np.testing.assert_array_equal(gb.read(10, 3), values)

    def test_scalar_write(self):
        gb = GlobalBuffer(8)
        gb.write(0, 7.0)
        assert gb.read(0, 1)[0] == 7.0

    def test_bounds_checked(self):
        gb = GlobalBuffer(8)
        with pytest.raises(BufferError):
            gb.write(6, np.zeros(4))
        with pytest.raises(BufferError):
            gb.read(7, 2)
        with pytest.raises(BufferError):
            gb.read(-1, 1)

    def test_word_roundtrip(self):
        gb = GlobalBuffer(16)
        word = 0xDEADBEEF12345678
        gb.write_word(4, word)
        assert gb.read_word(4) == word

    def test_word_max_value(self):
        gb = GlobalBuffer(8)
        gb.write_word(0, (1 << 64) - 1)
        assert gb.read_word(0) == (1 << 64) - 1

    def test_clear(self):
        gb = GlobalBuffer(8)
        gb.write(0, np.ones(8))
        gb.clear()
        np.testing.assert_array_equal(gb.read(0, 8), np.zeros(8))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            GlobalBuffer(0)


class TestOutputBuffer:
    def test_store_load(self):
        ob = OutputBuffer(16)
        ob.store(2, np.array([1.0, 2.0]))
        np.testing.assert_array_equal(ob.load(2, 2), [1.0, 2.0])

    def test_overflow(self):
        ob = OutputBuffer(4)
        with pytest.raises(BufferError):
            ob.store(3, np.zeros(2))
        with pytest.raises(BufferError):
            ob.load(3, 2)
