"""GramcChip facade tests (host I/O, program loading, solver binding)."""

import numpy as np
import pytest

from repro.analog.topologies import AMCMode
from repro.core.pool import PoolConfig
from repro.macro.registers import MacroConfig, encode
from repro.system.assembler import AssemblyError
from repro.system.gramc import GramcChip


@pytest.fixture()
def chip() -> GramcChip:
    return GramcChip(PoolConfig(num_macros=2, rows=16, cols=16), rng=np.random.default_rng(0))


class TestHostIO:
    def test_operand_roundtrip(self, chip):
        values = np.array([1.0, -2.5, 3.25])
        chip.write_operand(100, values)
        np.testing.assert_array_equal(chip.read_result(100, 3), values)

    def test_matrix_operand_flattened(self, chip):
        matrix = np.arange(12, dtype=float).reshape(3, 4)
        chip.write_operand(0, matrix)
        np.testing.assert_array_equal(chip.read_result(0, 12), matrix.ravel())

    def test_config_word_staging(self, chip):
        config = MacroConfig(mode=AMCMode.EGV, rows=8, cols=8, g_lambda_code=77)
        chip.write_config_word(20, encode(config))
        assert chip.global_buffer.read_word(20) == encode(config)


class TestProgramLoading:
    def test_assembly_errors_propagate(self, chip):
        with pytest.raises(AssemblyError):
            chip.load_assembly("BOGUS 1, 2")

    def test_program_reload_resets_pc(self, chip):
        chip.load_assembly("NOP\nHALT")
        chip.run()
        assert chip.controller.pc > 0
        chip.load_assembly("HALT")
        assert chip.controller.pc == 0

    def test_instruction_list_loading(self, chip):
        from repro.system.isa import Instruction, Opcode

        chip.load_program([Instruction(Opcode.NOP), Instruction(Opcode.HALT)])
        trace = chip.run()
        assert trace.halted


class TestSolverBinding:
    def test_solver_is_singleton(self, chip):
        assert chip.solver is chip.solver

    def test_solver_uses_chip_macros(self, chip):
        rng = np.random.default_rng(1)
        matrix = rng.uniform(-1, 1, size=(8, 8))
        chip.solver.mvm(matrix, rng.uniform(-1, 1, 8))
        assert any(m.solve_count > 0 for m in chip.macros)

    def test_macro_count_matches_config(self, chip):
        assert len(chip.macros) == 2
