"""Controller tests: fetch-decode-execute over real macros."""

import numpy as np
import pytest

from repro.analog.topologies import AMCMode
from repro.arrays.mapping import DifferentialMapping
from repro.core.pool import MacroPool, PoolConfig
from repro.macro.registers import MacroConfig, PlaneLayout, encode, g_f_code_for
from repro.system.assembler import assemble
from repro.system.buffers import GlobalBuffer
from repro.system.controller import Controller, ExecutionError, Flag
from repro.system.isa import Instruction, Opcode


@pytest.fixture()
def setup():
    pool = MacroPool(PoolConfig(num_macros=4, rows=16, cols=16), rng=np.random.default_rng(0))
    gb = GlobalBuffer(4096)
    controller = Controller(pool.macros, gb)
    return pool, gb, controller


class TestControlFlow:
    def test_halt_stops_execution(self, setup):
        _, _, controller = setup
        controller.load(assemble("NOP\nHALT\nNOP"))
        trace = controller.run()
        assert trace.halted
        assert trace.instructions_executed == 2

    def test_run_to_end_without_halt(self, setup):
        _, _, controller = setup
        controller.load(assemble("NOP\nNOP"))
        trace = controller.run()
        assert not trace.halted
        assert trace.instructions_executed == 2

    def test_jump(self, setup):
        _, _, controller = setup
        controller.load(assemble("JMP skip\nNOP\nskip:\nHALT"))
        trace = controller.run()
        assert trace.halted
        assert trace.instructions_executed == 2

    def test_branch_on_flag(self, setup):
        _, gb, controller = setup
        gb.write(0, np.array([1.0, 1.0]))   # a
        gb.write(2, np.array([1.0, 5.0]))   # b (mismatch)
        gb.write(4, np.array([0.1]))        # tolerance
        controller.load(assemble("SETN 2\nCMPV 0, 2, 4\nBNE fail\nHALT\nfail:\nNOP\nHALT"))
        trace = controller.run()
        assert controller.flag is Flag.NOT_EQUAL
        assert trace.instructions_executed == 5  # SETN, CMPV, BNE, NOP, HALT

    def test_step_budget(self, setup):
        _, _, controller = setup
        controller.load(assemble("loop:\nJMP loop"))
        trace = controller.run(max_steps=25)
        assert trace.instructions_executed == 25


class TestDigitalOps:
    def test_relu_in_place(self, setup):
        _, gb, controller = setup
        gb.write(100, np.array([-1.0, 2.0, -3.0]))
        controller.load(assemble("RELU 100, 3\nHALT"))
        controller.run()
        np.testing.assert_array_equal(gb.read(100, 3), [0.0, 2.0, 0.0])

    def test_shift_add(self, setup):
        _, gb, controller = setup
        gb.write(10, np.array([7.0, 1.0]))  # msb
        gb.write(12, np.array([15.0, 0.0]))  # lsb
        controller.load(assemble("SETN 2\nADDS 20, 10, 12\nHALT"))
        controller.run()
        np.testing.assert_array_equal(gb.read(20, 2), [127.0, 16.0])

    def test_pool(self, setup):
        _, gb, controller = setup
        maps = np.arange(16, dtype=float).reshape(1, 4, 4)
        gb.write(0, maps.ravel())
        controller.load(assemble("POOL 100, 0, 1, 4, 4\nHALT"))
        controller.run()
        np.testing.assert_array_equal(gb.read(100, 4), [5.0, 7.0, 13.0, 15.0])

    def test_argmax(self, setup):
        _, gb, controller = setup
        gb.write(0, np.array([0.3, 0.9, 0.1]))
        controller.load(assemble("SETN 3\nARGMAX 50, 0\nHALT"))
        controller.run()
        assert gb.read(50, 1)[0] == 1.0

    def test_scal(self, setup):
        _, gb, controller = setup
        gb.write(0, np.array([1.0, 2.0]))
        gb.write(10, np.array([3.0, -1.0]))  # gain, offset
        controller.load(assemble("SETN 2\nSCAL 20, 0, 10\nHALT"))
        controller.run()
        np.testing.assert_array_equal(gb.read(20, 2), [2.0, 5.0])

    def test_movg(self, setup):
        _, gb, controller = setup
        gb.write(0, np.array([1.0, 2.0, 3.0]))
        controller.load(assemble("MOVG 10, 0, 3\nHALT"))
        controller.run()
        np.testing.assert_array_equal(gb.read(10, 3), [1.0, 2.0, 3.0])


class TestAnalogPath:
    def test_cfg_wrv_exe_movo_pipeline(self, setup):
        """The full Fig. 3 flow: configure, write-verify, execute, collect."""
        pool, gb, controller = setup
        matrix = np.random.default_rng(1).uniform(-1, 1, size=(8, 8))
        mapping = DifferentialMapping.from_matrix(matrix)

        # Stage the config word (paired columns → 16 physical columns).
        config = MacroConfig(
            mode=AMCMode.MVM, rows=8, cols=16, g_f_code=g_f_code_for(2e-3),
            layout=PlaneLayout.PAIRED_COLUMNS,
        )
        gb.write_word(0, encode(config))
        # Stage the conductance targets (interleaved planes) and the input.
        interleaved = np.empty((8, 16))
        interleaved[:, 0::2] = mapping.g_pos
        interleaved[:, 1::2] = mapping.g_neg
        gb.write(16, interleaved.ravel())
        x = np.random.default_rng(2).uniform(-0.3, 0.3, 8)
        gb.write(200, x)

        controller.load(
            assemble(
                """
                CFG  m0, 0
                WRV  m0, 16, 128
                EXE  m0, 200, 8
                MOVO m0, 300, 8
                HALT
                """
            )
        )
        trace = controller.run()
        assert trace.halted

        outputs = gb.read(300, 8)
        g_f = pool.macros[0].config.g_f
        decoded = -outputs * g_f * mapping.value_scale
        reference = matrix @ x
        error = np.linalg.norm(decoded - reference) / np.linalg.norm(reference)
        assert error < 0.4

    def test_wrv_sets_flag_on_success(self, setup):
        pool, gb, controller = setup
        pool.macros[0].configure(AMCMode.MVM, 4, 4)
        gb.write(0, np.full(16, 50e-6))
        controller.load(assemble("WRV m0, 0, 16\nHALT"))
        controller.run()
        assert controller.flag is Flag.EQUAL

    def test_wrv_count_mismatch_raises(self, setup):
        pool, gb, controller = setup
        pool.macros[0].configure(AMCMode.MVM, 4, 4)
        controller.load(assemble("WRV m0, 0, 15\nHALT"))
        with pytest.raises(ExecutionError, match="WRV count"):
            controller.run()

    def test_bad_macro_id_raises(self, setup):
        _, _, controller = setup
        controller.load([Instruction(Opcode.MOVO, arg0=99, arg1=0, arg2=1)])
        with pytest.raises(ExecutionError, match="macro id"):
            controller.run()

    def test_stats_recorded(self, setup):
        pool, gb, controller = setup
        pool.macros[0].configure(AMCMode.MVM, 4, 4)
        gb.write(0, np.full(16, 50e-6))
        controller.load(assemble("WRV m0, 0, 16\nHALT"))
        controller.run()
        assert controller.stats.cells_programmed == 16
        assert controller.stats.instructions["WRV"] == 1
