"""Digital functional module tests."""

import numpy as np
import pytest

from repro.system import functional


class TestActivations:
    def test_relu(self):
        np.testing.assert_array_equal(
            functional.relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )

    def test_leaky_relu(self):
        out = functional.leaky_relu(np.array([-1.0, 2.0]), slope=0.1)
        np.testing.assert_allclose(out, [-0.1, 2.0])

    def test_softmax_sums_to_one(self):
        probs = functional.softmax(np.array([1.0, 2.0, 3.0]))
        assert probs.sum() == pytest.approx(1.0)
        assert np.argmax(probs) == 2

    def test_softmax_stable_for_large_logits(self):
        probs = functional.softmax(np.array([1000.0, 1001.0]))
        assert np.all(np.isfinite(probs))


class TestPooling:
    def test_max_pool(self):
        maps = np.arange(16, dtype=float).reshape(1, 4, 4)
        pooled = functional.max_pool2d(maps)
        np.testing.assert_array_equal(pooled[0], [[5.0, 7.0], [13.0, 15.0]])

    def test_avg_pool(self):
        maps = np.ones((2, 4, 4))
        pooled = functional.avg_pool2d(maps)
        assert pooled.shape == (2, 2, 2)
        assert np.all(pooled == 1.0)

    def test_odd_dimensions_rejected(self):
        with pytest.raises(ValueError):
            functional.max_pool2d(np.ones((1, 5, 4)))

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError):
            functional.max_pool2d(np.ones((4, 4)))


class TestShiftAdd:
    def test_nibble_recombination(self):
        msb = np.array([7.0, 1.0])
        lsb = np.array([15.0, 0.0])
        np.testing.assert_array_equal(
            functional.shift_add(msb, lsb), [127.0, 16.0]
        )

    def test_custom_shift(self):
        np.testing.assert_array_equal(
            functional.shift_add(np.array([1.0]), np.array([1.0]), shift_bits=8),
            [257.0],
        )


class TestHelpers:
    def test_argmax(self):
        assert functional.argmax(np.array([0.1, 0.9, 0.5])) == 1

    def test_affine_scale(self):
        np.testing.assert_allclose(
            functional.affine_scale(np.array([1.0, 2.0]), 3.0, 1.0), [4.0, 7.0]
        )

    def test_normalize(self):
        out = functional.normalize(np.array([3.0, 4.0]))
        np.testing.assert_allclose(out, [0.6, 0.8])

    def test_normalize_zero_vector(self):
        np.testing.assert_array_equal(functional.normalize(np.zeros(3)), np.zeros(3))

    def test_power_iteration_estimate(self):
        matrix = np.diag([5.0, 1.0, 0.5])
        assert functional.power_iteration_estimate(matrix) == pytest.approx(5.0, rel=1e-3)


class TestIterativeRefinement:
    def test_refinement_converges_from_noisy_seed(self):
        """The paper's seed-solution use case: AMC answer → exact answer."""
        rng = np.random.default_rng(0)
        matrix = np.eye(8) * 2.0 + 0.1 * rng.standard_normal((8, 8))
        b = rng.uniform(-1, 1, 8)
        exact = np.linalg.solve(matrix, b)
        seed = exact * (1.0 + 0.1 * rng.standard_normal(8))  # ~10% AMC error
        refined = functional.iterative_refinement(matrix, b, seed, iterations=2)
        assert np.linalg.norm(refined - exact) / np.linalg.norm(exact) < 1e-10
