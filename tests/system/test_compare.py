"""Comparison-unit tests (the CU of the verify path)."""

import numpy as np
import pytest

from repro.system.compare import Comparison, ComparisonUnit


class TestComparison:
    def test_three_way(self):
        cu = ComparisonUnit(tolerance=0.1)
        out = cu.compare(np.array([1.0, 1.05, 1.2]), np.array([1.0, 1.0, 1.0]))
        np.testing.assert_array_equal(
            out, [Comparison.EQUAL, Comparison.EQUAL, Comparison.ABOVE]
        )

    def test_below(self):
        cu = ComparisonUnit(tolerance=0.05)
        out = cu.compare(np.array([0.5]), np.array([1.0]))
        assert out[0] == Comparison.BELOW

    def test_all_equal(self):
        cu = ComparisonUnit(tolerance=0.1)
        assert cu.all_equal(np.array([1.0, 2.0]), np.array([1.05, 1.95]))
        assert not cu.all_equal(np.array([1.0, 2.0]), np.array([1.2, 2.0]))

    def test_mismatch_fraction(self):
        cu = ComparisonUnit(tolerance=0.1)
        measured = np.array([1.0, 1.5, 2.0, 2.5])
        ideal = np.array([1.0, 1.0, 2.0, 2.0])
        assert cu.mismatch_fraction(measured, ideal) == pytest.approx(0.5)

    def test_shape_mismatch_rejected(self):
        cu = ComparisonUnit(tolerance=0.1)
        with pytest.raises(ValueError):
            cu.compare(np.zeros(3), np.zeros(4))

    def test_matrix_inputs(self):
        cu = ComparisonUnit(tolerance=1e-6)
        a = np.random.default_rng(0).random((4, 4))
        assert cu.all_equal(a, a.copy())
