"""Admission control: quotas, shedding, and structured backpressure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pool import MacroPool, PoolConfig
from repro.serve import (
    AdmissionController,
    QuotaExceeded,
    ServeConfig,
    ServiceOverloaded,
    SolveRequest,
    TenantQuota,
    TenantRegistry,
    UnknownTenant,
)
from repro.system.stats import ServiceStats


def _request(tenant: str, columns: int = 1) -> SolveRequest:
    # Admission never touches the future/operator/payload; placeholders
    # keep these tests synchronous (no event loop needed).
    return SolveRequest(
        tenant=tenant,
        operator=None,
        kind="solve",
        payload=None,
        future=None,
        columns=columns,
    )


@pytest.fixture()
def pool() -> MacroPool:
    return MacroPool(
        PoolConfig(num_macros=4, rows=16, cols=16), rng=np.random.default_rng(3)
    )


def _controller(pool, *, global_bound=8, tenant_bound=4):
    stats = ServiceStats()
    registry = TenantRegistry(stats)
    registry.register("alice", TenantQuota(max_pending=tenant_bound))
    registry.register("bob", TenantQuota(max_pending=tenant_bound))
    config = ServeConfig(max_pending=global_bound)
    return (
        AdmissionController(registry, config, stats, pool.owner_stats),
        registry,
        stats,
    )


def test_unknown_tenant_is_rejected(pool):
    admission, _, _ = _controller(pool)
    with pytest.raises(UnknownTenant):
        admission.admit(_request("mallory"))


def test_tenant_quota_sheds_with_structured_error(pool):
    admission, registry, stats = _controller(pool, tenant_bound=2)
    for _ in range(2):
        admission.admit(_request("alice"))
    with pytest.raises(QuotaExceeded) as excinfo:
        admission.admit(_request("alice"))
    error = excinfo.value
    # Every rejection is a structured backpressure error with the pool
    # ownership and queue depths attached.
    assert isinstance(error, ServiceOverloaded)
    assert error.tenant == "alice"
    assert isinstance(error.owner_stats, dict)
    assert error.queue_depths["alice"] == 2
    assert error.queue_depths["total"] == 2
    counters = stats.tenant("alice")
    assert counters.submitted == 3
    assert counters.admitted == 2
    assert counters.rejected == 1
    assert stats.shed_requests == 1
    # Bob is unaffected by Alice's quota.
    admission.admit(_request("bob"))


def test_global_bound_sheds_any_tenant(pool):
    admission, _, stats = _controller(pool, global_bound=3, tenant_bound=100)
    admission.admit(_request("alice"))
    admission.admit(_request("alice"))
    admission.admit(_request("bob"))
    with pytest.raises(ServiceOverloaded) as excinfo:
        admission.admit(_request("bob"))
    assert not isinstance(excinfo.value, QuotaExceeded)
    assert excinfo.value.queue_depths["total"] == 3
    assert stats.shed_requests == 1


def test_release_frees_slots(pool):
    admission, registry, _ = _controller(pool, tenant_bound=1)
    request = _request("alice")
    admission.admit(request)
    with pytest.raises(QuotaExceeded):
        admission.admit(_request("alice"))
    admission.release(request)
    assert registry.get("alice").pending == 0
    admission.admit(_request("alice"))  # slot is back


def test_owner_stats_snapshot_in_rejection_reflects_pool(pool):
    admission, _, _ = _controller(pool, tenant_bound=1)
    pool.acquire("resident-op", 2)
    pool.pin("resident-op")
    admission.admit(_request("alice"))
    with pytest.raises(QuotaExceeded) as excinfo:
        admission.admit(_request("alice"))
    owner_stats = excinfo.value.owner_stats
    assert owner_stats["resident-op"]["macros"] == 2
    assert owner_stats["resident-op"]["pinned"] is True


def test_queue_depths_cover_all_tenants(pool):
    admission, registry, _ = _controller(pool)
    admission.admit(_request("alice"))
    admission.admit(_request("alice"))
    admission.admit(_request("bob"))
    depths = registry.queue_depths()
    assert depths == {"alice": 2, "bob": 1, "total": 3}
