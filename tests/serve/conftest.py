"""Fixtures for the multi-tenant serve-layer suite.

The bit-transparency tests need *twin chips*: two independently
constructed but identically seeded, fully noiseless solver stacks, so a
coalesced answer on one can be compared bitwise against sequential
answers on the other.  Noiseless matters: OpAmp/DAC/ADC noise is drawn
per engine call and sized by the batch shape, so any nonzero sigma makes
sequential and coalesced runs consume different random streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analog.opamp import OpAmpParams
from repro.converters.adc import ADCParams
from repro.converters.dac import DACParams
from repro.core.pool import MacroPool, PoolConfig
from repro.core.solver import GramcSolver
from repro.devices.constants import DeviceStack, VariabilityParams


def noiseless_pool_config(num_macros: int = 4, n: int = 16) -> PoolConfig:
    """A pool whose physics draws no per-solve randomness at all."""
    return PoolConfig(
        num_macros=num_macros,
        rows=n,
        cols=n,
        stack=DeviceStack(variability=VariabilityParams(read_noise_sigma=0.0)),
        opamp=OpAmpParams(noise_sigma=0.0),
        dac=DACParams(noise_sigma=0.0),
        adc=ADCParams(noise_sigma=0.0),
    )


def make_noiseless_solver(
    seed: int = 1234,
    num_macros: int = 4,
    n: int = 16,
    **solver_kwargs,
) -> GramcSolver:
    """One deterministic solver stack; same seed ⇒ bitwise-identical twin
    (device variability is drawn at construction/programming time from
    the seeded generator, so twins program identical conductances)."""
    pool = MacroPool(
        noiseless_pool_config(num_macros, n), rng=np.random.default_rng(seed)
    )
    return GramcSolver(
        pool=pool, rng=np.random.default_rng(seed + 1), **solver_kwargs
    )


@pytest.fixture()
def solver_twins():
    """(serve_solver, reference_solver): identically seeded noiseless stacks."""
    return make_noiseless_solver(seed=7), make_noiseless_solver(seed=7)
