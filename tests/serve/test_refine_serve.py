"""Mixed-``rtol`` coalescing: the accuracy contract through the serve layer.

Requests with different refinement targets (including none at all) must
share one analog step per window and refine independently: a no-``rtol``
sibling's answer stays bitwise identical to a sequential solve on a twin
chip, while each refining caller gets *its own* contract verdict
(per-column convergence, worst-of-its-columns residual) sliced out of the
window result."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.analog import column_independent_apply
from repro.analog.topologies import AMCMode
from repro.core.errors import ShapeError
from repro.serve import ServeConfig, ServeError, SolveService, TenantQuota

pytestmark = pytest.mark.asyncio

N = 12


def _problem(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    a = np.eye(N) * 2.0 + rng.normal(0.0, 0.05, (N, N))
    b = rng.normal(0.0, 1.0, (N, 4))
    b /= np.max(np.abs(b), axis=0)
    return a, b


async def test_mixed_rtol_window_refines_independently(solver_twins):
    """One refining client + one plain client in the same window: the
    plain client is bitwise undisturbed, the refining client converges."""
    serve_solver, reference_solver = solver_twins
    rng = np.random.default_rng(11)
    a, b = _problem(rng)

    # Twin reference: the plain client's answer with nobody refining.
    with column_independent_apply():
        with reference_solver.compile(a, AMCMode.INV) as op:
            op.solve(b)  # warm-up
            expected_plain = op.solve(b[:, 3]).value.copy()

    service = SolveService(serve_solver, ServeConfig(window_s=0.05))
    service.register_tenant("precise", TenantQuota())
    service.register_tenant("casual", TenantQuota())
    async with service:
        op = await service.compile("precise", a, AMCMode.INV)
        await service.solve("precise", op, b)  # same warm-up batch
        refined, plain = await asyncio.gather(
            service.solve("precise", op, b[:, :3], rtol=1e-10),
            service.solve("casual", op, b[:, 3]),
        )
    # The window coalesced: one batched engine call carried both.
    assert service.stats.engine_calls == 2  # warm-up + the window
    assert refined.refined_residual <= 1e-10
    assert refined.refine_steps > 0
    assert refined.per_column_converged.shape == (3,)
    assert refined.per_column_converged.all()
    # The casual sibling: no refine metadata, bitwise-identical answer.
    assert plain.refine_steps is None
    assert plain.per_column_converged is None
    assert np.array_equal(plain.value, expected_plain)


async def test_each_refining_caller_gets_its_own_verdict(solver_twins):
    serve_solver, _ = solver_twins
    rng = np.random.default_rng(12)
    a, b = _problem(rng)
    service = SolveService(serve_solver, ServeConfig(window_s=0.05))
    service.register_tenant("tight", TenantQuota())
    service.register_tenant("loose", TenantQuota())
    async with service:
        op = await service.compile("tight", a, AMCMode.INV)
        await service.solve("tight", op, b)  # warm-up
        tight, loose = await asyncio.gather(
            service.solve("tight", op, b[:, :2], rtol=1e-10),
            service.solve("loose", op, b[:, 2:], rtol=1e-4),
        )
    assert tight.refined_residual <= 1e-10
    assert loose.refined_residual <= 1e-4
    assert tight.per_column_converged.shape == (2,)
    assert loose.per_column_converged.shape == (2,)
    assert tight.per_column_residual.max() <= 1e-10
    # The loose caller's verdict is its own, not the window's worst.
    assert loose.refined_residual >= tight.refined_residual


async def test_vector_request_with_rtol_squeezes_back(solver_twins):
    serve_solver, _ = solver_twins
    rng = np.random.default_rng(13)
    a, b = _problem(rng)
    service = SolveService(serve_solver, ServeConfig(window_s=0.02))
    service.register_tenant("v", TenantQuota())
    async with service:
        op = await service.compile("v", a, AMCMode.INV)
        result = await service.solve("v", op, b[:, 0], rtol=1e-8)
    assert result.value.shape == (N,)
    assert result.per_column_converged.shape == (1,)
    assert result.refined_residual <= 1e-8


async def test_rtol_rejected_for_non_solve_kinds(solver_twins):
    serve_solver, _ = solver_twins
    rng = np.random.default_rng(14)
    a, b = _problem(rng)
    service = SolveService(serve_solver, ServeConfig(window_s=0.02))
    service.register_tenant("t", TenantQuota())
    async with service:
        op = await service.compile("t", a, AMCMode.MVM)
        with pytest.raises(ServeError, match="refinement contract"):
            await service.submit("t", op, "mvm", b[:, 0], rtol=1e-8)


async def test_bad_rtol_rejected_in_caller_context(solver_twins):
    """A malformed rtol fails the submit itself — it must never reach a
    window where it could poison coalesced siblings."""
    serve_solver, _ = solver_twins
    rng = np.random.default_rng(15)
    a, b = _problem(rng)
    service = SolveService(serve_solver, ServeConfig(window_s=0.02))
    service.register_tenant("t", TenantQuota())
    async with service:
        op = await service.compile("t", a, AMCMode.INV)
        with pytest.raises(ShapeError):
            await service.solve("t", op, b[:, :2], rtol=np.array([1e-8] * 3))
        with pytest.raises(ValueError):
            await service.solve("t", op, b[:, 0], rtol=-1e-8)
        # The service is still healthy after the rejected submits.
        ok = await service.solve("t", op, b[:, 0], rtol=1e-6)
        assert ok.refined_residual <= 1e-6
