"""Serve-layer degradation: fault retries, cancellation races, backoff hints.

The dispatch window must survive a chip that degrades mid-batch: one
serve-level heal + retry keeps coalesced siblings alive, a caller that
cancelled during the retry is never re-executed or re-billed, and
unrecoverable batches reject with a structured
:class:`DegradedChipError` carrying the health snapshot.  Shed requests
carry a ``retry_after_hint`` so clients can back off intelligently."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.analog.topologies import AMCMode
from repro.core.errors import ConvergenceError, DegradedChipError
from repro.faults import FaultInjector, FaultPlan
from repro.serve.coalescer import CoalescedBatch
from repro.serve.service import SolveService
from repro.serve.types import (
    QuotaExceeded,
    ServeConfig,
    ServiceOverloaded,
    SolveRequest,
    TenantQuota,
)
from tests.serve.conftest import make_noiseless_solver

pytestmark = pytest.mark.asyncio

N = 12


def _problem(k=2):
    rng = np.random.default_rng(21)
    a = np.eye(N) * 3.0 + rng.normal(0, 0.1, (N, N))
    b = rng.normal(0, 1, (N, k))
    return a, b


def make_faulted_service(**config) -> SolveService:
    solver = make_noiseless_solver(seed=31)
    FaultInjector(FaultPlan(), solver.pool)
    return SolveService(solver, ServeConfig(**config))


def _flaky(operator, failures: int, error_factory):
    """Wrap ``operator.solve`` to fail the first ``failures`` calls and
    record the column width of every attempt."""
    original = operator.solve
    widths: list[int] = []

    def solve(payload, **kwargs):
        payload = np.asarray(payload, dtype=float)
        widths.append(1 if payload.ndim == 1 else payload.shape[1])
        if len(widths) <= failures:
            raise error_factory()
        return original(payload, **kwargs)

    operator.solve = solve
    return widths


# ------------------------------------------------------------ fault retry


async def test_window_survives_one_fault_via_heal_and_retry():
    a, b = _problem()
    service = make_faulted_service(window_s=0.05)
    service.register_tenant("alice")
    service.register_tenant("bob")
    async with service:
        op = await service.compile("alice", a, AMCMode.INV)
        widths = _flaky(op, 1, lambda: ConvergenceError("injected tile fault"))
        results = await asyncio.gather(
            service.solve("alice", op, b[:, 0]),
            service.solve("bob", op, b[:, 1]),
        )
    assert widths == [2, 2]  # one failed window, one coalesced retry
    assert all(r.value.shape == (N,) for r in results)
    assert service.stats.fault_retries == 1
    monitor = service.solver.pool.fault_injector.monitor
    assert monitor.heal_reports  # the serve layer really healed


async def test_unrecoverable_batch_rejects_with_health_snapshot():
    a, b = _problem()
    service = make_faulted_service(window_s=0.05)
    service.register_tenant("alice")
    async with service:
        op = await service.compile("alice", a, AMCMode.INV)
        _flaky(op, 99, lambda: ConvergenceError("permanent tile fault"))
        with pytest.raises(DegradedChipError) as excinfo:
            await service.solve("alice", op, b[:, 0])
    error = excinfo.value
    assert error.health is not None and "scores" in error.health
    assert error.healing is not None
    counters = service.registry.get("alice").counters
    assert counters.failed == 1 and counters.completed == 0


async def test_without_injector_convergence_errors_pass_through():
    """No fault machinery ⇒ no serve-level heal: the original error
    reaches the caller unchanged (fault-free path untouched)."""
    a, b = _problem()
    service = SolveService(make_noiseless_solver(seed=31), ServeConfig())
    service.register_tenant("alice")
    async with service:
        op = await service.compile("alice", a, AMCMode.INV)
        _flaky(op, 1, lambda: ConvergenceError("diverged"))
        with pytest.raises(ConvergenceError):
            await service.solve("alice", op, b[:, 0])
    assert service.stats.fault_retries == 0


# ------------------------------------------------------ cancellation race


async def test_cancelled_request_is_not_reexecuted_or_rebilled():
    """A caller that cancels while the window's fault is being healed
    must not ride the retry: its column is dropped from the rebuilt
    batch and its tenant is never billed for the retried dispatch."""
    a, b = _problem()
    service = make_faulted_service(window_s=0.05)
    service.register_tenant("alice")
    service.register_tenant("bob")
    async with service:
        op = await service.compile("alice", a, AMCMode.INV)
        loop = asyncio.get_running_loop()
        requests = [
            SolveRequest(
                tenant=tenant,
                operator=op,
                kind="solve",
                payload=b[:, j],
                future=loop.create_future(),
                columns=1,
                vector=True,
            )
            for j, tenant in enumerate(["alice", "bob"])
        ]
        batch = CoalescedBatch(op, "solve", requests)
        widths = _flaky(op, 0, None)
        requests[0].future.cancel()  # alice bails during the fault window
        await service._retry_degraded(
            batch, ConvergenceError("injected tile fault"), parent=None
        )
        assert widths == [1]  # only bob's column was re-executed
        assert requests[0].future.cancelled()
        assert requests[1].future.result().value.shape == (N,)
    alice = service.registry.get("alice").counters
    bob = service.registry.get("bob").counters
    assert alice.columns_dispatched == 0 and alice.completed == 0
    assert bob.columns_dispatched == 1 and bob.completed == 1


async def test_retry_skipped_entirely_when_every_caller_left():
    a, b = _problem()
    service = make_faulted_service(window_s=0.05)
    service.register_tenant("alice")
    async with service:
        op = await service.compile("alice", a, AMCMode.INV)
        loop = asyncio.get_running_loop()
        request = SolveRequest(
            tenant="alice",
            operator=op,
            kind="solve",
            payload=b[:, 0],
            future=loop.create_future(),
            columns=1,
            vector=True,
        )
        batch = CoalescedBatch(op, "solve", [request])
        widths = _flaky(op, 0, None)
        request.future.cancel()
        await service._retry_degraded(
            batch, ConvergenceError("injected"), parent=None
        )
        assert widths == []  # chip never touched again
    assert service.stats.fault_retries == 0


# ------------------------------------------------------- retry_after_hint


async def test_shed_requests_carry_retry_after_hint():
    a, b = _problem()
    service = make_faulted_service(max_pending=1, window_s=0.02)
    service.register_tenant(
        "alice", TenantQuota(max_pending=1)
    )
    async with service:
        op = await service.compile("alice", a, AMCMode.INV)
        await service.solve("alice", op, b[:, 0])  # seeds mean dispatch time
        mean = service.stats.mean_dispatch_s
        assert mean > 0.0
        first = asyncio.create_task(service.solve("alice", op, b))
        await asyncio.sleep(0)  # let it occupy the single pending slot
        with pytest.raises(ServiceOverloaded) as excinfo:
            await service.solve("alice", op, b[:, 1])
        await first
    hint = excinfo.value.retry_after_hint
    # depth (1 queued) + the retrying request itself, times the mean
    # dispatch time observed at shed time — strictly above one mean.
    assert hint is not None and hint >= mean
    assert hint < 60.0  # sane scale: milliseconds-to-seconds, not hours


async def test_quota_exceeded_inherits_the_hint():
    a, b = _problem()
    service = make_faulted_service(window_s=0.02)
    service.register_tenant("alice", TenantQuota(max_pending=1))
    async with service:
        op = await service.compile("alice", a, AMCMode.INV)
        first = asyncio.create_task(service.solve("alice", op, b))
        await asyncio.sleep(0)
        with pytest.raises(QuotaExceeded) as excinfo:
            await service.solve("alice", op, b[:, 0])
        await first
    assert excinfo.value.retry_after_hint is not None
    assert excinfo.value.retry_after_hint > 0.0


async def test_hint_defaults_to_window_before_any_dispatch():
    service = make_faulted_service(window_s=0.004)
    assert service.retry_after_estimate() == pytest.approx(0.004)
