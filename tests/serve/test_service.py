"""End-to-end serve-layer tests against the real analog engine.

The centerpiece is the **bit-transparency contract**: N concurrent
clients coalesced into one batched engine call receive answers bitwise
identical to N sequential solve calls on an identically seeded twin chip.
This holds under the service's column-independent deterministic engine
mode, a noiseless configuration, and a warmed shared TIA ladder (both
twins warm with the same full batch so no ladder moves occur during the
measured solves) — exactly the conditions the serve layer documents."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.analog import column_independent_apply
from repro.analog.topologies import AMCMode
from repro.serve import (
    ColumnRangingError,
    RequestTimeout,
    ServeConfig,
    ServeError,
    ServiceOverloaded,
    SolveService,
    TenantQuota,
)
from tests.serve.conftest import make_noiseless_solver

pytestmark = pytest.mark.asyncio

N_CLIENTS = 5
N = 12


def _problem(rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """A well-conditioned operand and unit-peak columns (comparable
    magnitudes keep the shared TIA ladder still during measurement)."""
    a = np.eye(N) * 2.0 + rng.normal(0.0, 0.05, (N, N))
    b = rng.normal(0.0, 1.0, (N, N_CLIENTS))
    b /= np.max(np.abs(b), axis=0)
    return a, b


def _sequential_columns(solver, a, b) -> list[np.ndarray]:
    """Reference answers: warm the ladder with the full batch, then solve
    column by column, all under the engine's deterministic mode."""
    with column_independent_apply():
        with solver.compile(a, AMCMode.INV) as op:
            op.solve(b)  # ladder warm-up, identical on both twins
            return [op.solve(b[:, j]).value.copy() for j in range(b.shape[1])]


async def test_coalesced_answers_are_bitwise_sequential(solver_twins):
    serve_solver, reference_solver = solver_twins
    rng = np.random.default_rng(42)
    a, b = _problem(rng)
    expected = _sequential_columns(reference_solver, a, b)

    service = SolveService(serve_solver, ServeConfig(window_s=0.05))
    for j in range(N_CLIENTS):
        service.register_tenant(f"client{j}")
    async with service:
        op = await service.compile("client0", a, AMCMode.INV)
        await service.solve("client0", op, b)  # same warm-up batch
        results = await asyncio.gather(
            *[
                service.solve(f"client{j}", op, b[:, j])
                for j in range(N_CLIENTS)
            ]
        )
    # One engine call for the warm-up batch + one for the window.
    assert service.stats.engine_calls == 2
    assert service.stats.coalesced_columns == N_CLIENTS * 2
    for j, result in enumerate(results):
        assert result.value.shape == (N,)
        assert np.array_equal(result.value, expected[j]), f"column {j} differs"


async def test_mixed_shapes_coalesce_bitwise(solver_twins):
    serve_solver, reference_solver = solver_twins
    rng = np.random.default_rng(43)
    a, b = _problem(rng)
    # client0: vector col0; client1: (n, 2) batch cols 1-2; client2: vector col3.
    with column_independent_apply():
        with reference_solver.compile(a, AMCMode.INV) as op:
            op.solve(b)  # warm-up
            want_vec0 = op.solve(b[:, 0]).value.copy()
            want_mat = op.solve(b[:, 1:3]).value.copy()
            want_vec3 = op.solve(b[:, 3]).value.copy()

    service = SolveService(serve_solver, ServeConfig(window_s=0.05))
    for name in ("c0", "c1", "c2"):
        service.register_tenant(name)
    async with service:
        op = await service.compile("c0", a, AMCMode.INV)
        await service.solve("c0", op, b)  # warm-up
        r0, r1, r2 = await asyncio.gather(
            service.solve("c0", op, b[:, 0]),
            service.solve("c1", op, b[:, 1:3]),
            service.solve("c2", op, b[:, 3]),
        )
    assert np.array_equal(r0.value, want_vec0)
    assert r1.value.shape == (N, 2)
    assert np.array_equal(r1.value, want_mat)
    assert np.array_equal(r2.value, want_vec3)


async def test_cancellation_mid_window_leaves_siblings_bitwise(solver_twins):
    serve_solver, reference_solver = solver_twins
    rng = np.random.default_rng(44)
    a, b = _problem(rng)
    expected = _sequential_columns(reference_solver, a, b)

    service = SolveService(serve_solver, ServeConfig(window_s=0.25))
    for j in range(N_CLIENTS):
        service.register_tenant(f"client{j}")
    async with service:
        op = await service.compile("client0", a, AMCMode.INV)
        await service.solve("client0", op, b)  # warm-up
        tasks = [
            asyncio.create_task(service.solve(f"client{j}", op, b[:, j]))
            for j in range(N_CLIENTS)
        ]
        await asyncio.sleep(0.02)  # all admitted, window still open
        tasks[2].cancel()
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
    assert isinstance(outcomes[2], asyncio.CancelledError)
    for j, outcome in enumerate(outcomes):
        if j == 2:
            continue
        assert np.array_equal(outcome.value, expected[j]), f"column {j} differs"
    assert service.stats.tenant("client2").cancelled == 1
    assert service.stats.tenant("client2").completed == 0


async def test_ranging_failure_is_isolated_to_its_column():
    # max_attempts=4 exhausts the ladder + input-shrink budget for the
    # ill-conditioned axis but leaves the well-conditioned ones in range.
    solver = make_noiseless_solver(seed=11, max_attempts=4)
    diag = np.full(8, 2.0)
    diag[-1] = 2.0 / 15.0  # one quantization level: survives 4-bit mapping
    a = np.diag(diag)
    b_good0 = np.eye(8)[0]
    b_good1 = np.eye(8)[1]
    b_bad = np.eye(8)[7]  # drives the near-singular axis

    service = SolveService(solver, ServeConfig(window_s=0.05))
    for name in ("good0", "good1", "bad"):
        service.register_tenant(name)
    async with service:
        op = await service.compile("good0", a, AMCMode.INV)
        outcomes = await asyncio.gather(
            service.solve("good0", op, b_good0),
            service.solve("good1", op, b_good1),
            service.solve("bad", op, b_bad),
            return_exceptions=True,
        )
    ok0, ok1, failed = outcomes
    assert not isinstance(ok0, Exception) and ok0.ok
    assert not isinstance(ok1, Exception) and ok1.ok
    assert isinstance(failed, ColumnRangingError)
    assert failed.result is not None and failed.result.saturated
    assert service.stats.tenant("bad").failed == 1
    assert service.stats.tenant("good0").completed == 1
    # All three still rode one coalesced engine call.
    assert service.stats.engine_calls == 1


async def test_timeout_raises_request_timeout():
    solver = make_noiseless_solver(seed=12)
    service = SolveService(solver, ServeConfig(window_s=0.2))
    service.register_tenant("slow")
    async with service:
        op = await service.compile("slow", np.eye(8) * 2.0, AMCMode.INV)
        with pytest.raises(RequestTimeout):
            # The window is still collecting when the deadline fires.
            await service.solve("slow", op, np.ones(8), timeout=0.01)
    assert service.stats.tenant("slow").timed_out == 1
    # The pending slot was returned despite the timeout.
    assert service.snapshot()["queue_depths"]["total"] == 0


async def test_handles_only_rejects_raw_matrices():
    solver = make_noiseless_solver(seed=13)
    service = SolveService(solver)
    service.register_tenant("t")
    async with service:
        with pytest.raises(TypeError, match="compiled operator handles only"):
            await service.solve("t", np.eye(8) * 2.0, np.ones(8))


async def test_mode_and_shape_validated_at_submit():
    solver = make_noiseless_solver(seed=14)
    service = SolveService(solver)
    service.register_tenant("t")
    async with service:
        op = await service.compile("t", np.eye(8) * 2.0, AMCMode.INV)
        with pytest.raises(ServeError, match="compiled for mvm"):
            await service.mvm("t", op, np.ones(8))
        with pytest.raises(ValueError, match="leading dimension 8"):
            await service.solve("t", op, np.ones(9))
        await service.release("t", op)
        with pytest.raises(ServeError, match="closed"):
            await service.solve("t", op, np.ones(8))


async def test_submit_requires_running_service():
    solver = make_noiseless_solver(seed=15)
    service = SolveService(solver)
    service.register_tenant("t")
    with pytest.raises(ServeError, match="not running"):
        await service.solve("t", object(), np.ones(8))


async def test_fair_share_preemption_reclaims_over_share_tenant():
    # Pool of 2 macros: "fair" compiles two resident operators (2 > its
    # share of 1); "hog"'s evicted operator must preempt fair's tiles.
    solver = make_noiseless_solver(seed=16, num_macros=2, n=16)
    service = SolveService(solver, ServeConfig(window_s=0.005))
    service.register_tenant("hog", TenantQuota(max_macros=1))
    service.register_tenant("fair", TenantQuota(max_macros=1))
    async with service:
        op_h = await service.compile("hog", np.eye(8) * 2.0, AMCMode.INV)
        await service.compile("fair", np.eye(8) * 3.0, AMCMode.INV)
        await service.compile("fair", np.eye(8) * 4.0, AMCMode.INV)
        assert not op_h.resident  # LRU-evicted by fair's compiles
        result = await service.solve("hog", op_h, np.ones(8))
        assert result.ok
    assert service.stats.tenant("fair").preemptions == 1


async def test_overload_when_everything_is_pinned():
    solver = make_noiseless_solver(seed=17, num_macros=1, n=16)
    service = SolveService(solver, ServeConfig(window_s=0.005))
    service.register_tenant("hog", TenantQuota(max_macros=0))
    service.register_tenant("meek")
    async with service:
        op_hog = await service.compile("hog", np.eye(8) * 2.0, AMCMode.INV)
        op_meek = await service.compile("meek", np.eye(8) * 3.0, AMCMode.INV)
        await service.solve("hog", op_hog, np.ones(8))  # hog resident again
        op_hog.pin()  # a pinned promise preemption must not break
        with pytest.raises(ServiceOverloaded) as excinfo:
            await service.solve("meek", op_meek, np.ones(8))
        assert excinfo.value.owner_stats  # structured: who holds the chip
        op_hog.unpin()
        result = await service.solve("meek", op_meek, np.ones(8))
        assert result.ok


async def test_snapshot_is_side_effect_free_poll():
    solver = make_noiseless_solver(seed=18)
    service = SolveService(solver)
    service.register_tenant("t")
    async with service:
        op = await service.compile("t", np.eye(8) * 2.0, AMCMode.INV)
        op.pin()
        before = solver.pool.acquisitions
        snapshot = service.snapshot()
        assert solver.pool.acquisitions == before  # no allocation happened
        assert snapshot["running"] is True
        assert snapshot["pool"]["pinned_macros"] >= 1
        assert "total" in snapshot["queue_depths"]
        assert snapshot["service"]["engine_calls"] == 0
        op.unpin()


async def test_service_restores_engine_determinism_mode():
    from repro.analog import column_independent

    solver = make_noiseless_solver(seed=19)
    assert not column_independent()
    service = SolveService(solver)
    service.register_tenant("t")
    async with service:
        assert column_independent()
    assert not column_independent()


async def test_tiled_solve_rides_the_stacked_engine():
    """A blocked operator served through the service sweeps on the
    vectorized grid engine: the scattered result surfaces the stacked
    telemetry (O(block-rows) dispatches per sweep, stack-rebuild counts),
    and the answer is bitwise the twin chip's direct stacked solve under
    the service's deterministic engine mode."""
    serve_solver = make_noiseless_solver(seed=11, num_macros=16, n=32)
    reference_solver = make_noiseless_solver(seed=11, num_macros=16, n=32)
    rng = np.random.default_rng(6)
    n, tile = 32, 8
    a = np.eye(n) * 4.0 + rng.normal(0.0, 0.05, (n, n))
    b = rng.normal(0.0, 1.0, (n, 3))
    b /= np.max(np.abs(b), axis=0)

    with column_independent_apply():
        with reference_solver.compile(a, AMCMode.INV, tile=tile) as ref:
            ref_first = ref.solve(b)
            ref_second = ref.solve(b)

    service = SolveService(serve_solver, ServeConfig(window_s=0.02))
    service.register_tenant("grid")
    async with service:
        op = await service.compile("grid", a, AMCMode.INV, tile=tile)
        assert op.grid == (4, 4)  # compile kwargs reached the solver
        first = await service.solve("grid", op, b)
        second = await service.solve("grid", op, b)

    assert np.array_equal(second.value, ref_second.value)
    assert first.stack_rebuilds == ref_first.stack_rebuilds > 0
    assert second.stack_rebuilds == 0  # steady state: stacks stay resident
    assert second.sweeps == ref_second.sweeps >= 1
    assert second.engine_dispatches == ref_second.engine_dispatches
    # ≤ 3 kernels per block-row stage, independent of the tiles per row —
    # the per-tile loop would pay O(tiles) engine calls per sweep.
    assert 0 < second.engine_dispatches <= 3 * op.grid[0] * second.sweeps
