"""Coalescer unit tests: grouping, scatter slicing, failure isolation.

These run against a stub operator so the batching/scatter *mechanism* is
pinned down independent of analog physics; the end-to-end bitwise
contract against the real engine lives in ``test_service.py``."""

from __future__ import annotations

import numpy as np

from repro.analog.topologies import AMCMode
from repro.core.results import SolveResult
from repro.serve import ColumnRangingError, SolveRequest, TenantQuota, TenantRegistry
from repro.serve.coalescer import coalesce
from repro.system.stats import ServiceStats


class _FakeFuture:
    """Just enough of asyncio.Future for synchronous scatter tests."""

    def __init__(self):
        self._result = None
        self._exception = None
        self._done = False

    def done(self):
        return self._done

    def cancel(self):
        self._done = True

    def set_result(self, value):
        assert not self._done
        self._result = value
        self._done = True

    def set_exception(self, error):
        assert not self._done
        self._exception = error
        self._done = True


class _StubOperator:
    """Returns a crafted batched SolveResult; records call shapes."""

    def __init__(self, key: str, n: int = 6, column_saturated=None, stable=True):
        self.key = key
        self.mode = AMCMode.INV
        self.shape = (n, n)
        self.closed = False
        self.calls: list[tuple[int, ...]] = []
        self._column_saturated = column_saturated
        self._stable = stable

    def solve(self, b: np.ndarray) -> SolveResult:
        self.calls.append(b.shape)
        k = b.shape[1]
        saturated = (
            np.zeros(k, dtype=bool)
            if self._column_saturated is None
            else np.asarray(self._column_saturated, dtype=bool)
        )
        return SolveResult(
            mode=AMCMode.INV,
            value=b * 2.0,  # recognisable per-column transform
            reference=b * 2.0,
            attempts=3,
            input_scale=1.0,
            stable=self._stable,
            saturated=bool(saturated.any()),
            macro_ids=(0,),
            input_scales=np.arange(1, k + 1, dtype=float),
            per_column_attempts=np.full(k, 3),
            column_saturated=saturated,
        )

    def eigvec(self) -> SolveResult:
        self.calls.append(("eigvec",))
        vector = np.full(self.shape[0], 1.0 / np.sqrt(self.shape[0]))
        return SolveResult(
            mode=AMCMode.EGV, value=vector, reference=vector, attempts=1,
            input_scale=1.0, stable=True, saturated=False, macro_ids=(0,),
        )


def _registry() -> TenantRegistry:
    registry = TenantRegistry(ServiceStats())
    for name in ("alice", "bob", "carol"):
        registry.register(name, TenantQuota())
    return registry


def _req(tenant, operator, payload, kind="solve", require_in_range=True):
    payload = None if payload is None else np.asarray(payload, dtype=float)
    vector = payload is None or payload.ndim == 1
    columns = 1 if vector else payload.shape[1]
    return SolveRequest(
        tenant=tenant, operator=operator, kind=kind, payload=payload,
        future=_FakeFuture(), columns=columns, vector=vector,
        require_in_range=require_in_range,
    )


def test_grouping_is_by_digest_and_kind():
    op_a, op_b = _StubOperator("digest-a"), _StubOperator("digest-b")
    requests = [
        _req("alice", op_a, np.ones(6)),
        _req("bob", op_a, np.ones(6)),
        _req("alice", op_b, np.ones(6)),
        _req("carol", op_a, None, kind="eigvec"),
    ]
    batches = coalesce(requests)
    keys = sorted((b.operator.key, b.kind, b.columns) for b in batches)
    assert keys == [
        ("digest-a", "eigvec", 1),
        ("digest-a", "solve", 2),
        ("digest-b", "solve", 1),
    ]


def test_scatter_slices_mixed_shapes_exactly():
    op = _StubOperator("d")
    r_vec = _req("alice", op, np.arange(6.0))
    r_mat = _req("bob", op, np.arange(12.0).reshape(6, 2))
    r_vec2 = _req("carol", op, np.arange(6.0) + 100.0)
    (batch,) = coalesce([r_vec, r_mat, r_vec2])
    assert batch.columns == 4
    result = batch.execute()
    assert op.calls == [(6, 4)]
    registry = _registry()
    batch.scatter(result, registry)

    out_vec = r_vec.future._result
    assert out_vec.value.shape == (6,)
    assert np.array_equal(out_vec.value, np.arange(6.0) * 2.0)
    assert out_vec.input_scale == 1.0  # column 0 of the stub's 1..k scales
    assert out_vec.input_scales is None  # vector requests stay vector-shaped

    out_mat = r_mat.future._result
    assert out_mat.value.shape == (6, 2)
    assert np.array_equal(out_mat.value, np.arange(12.0).reshape(6, 2) * 2.0)
    assert np.array_equal(out_mat.input_scales, np.array([2.0, 3.0]))
    assert np.array_equal(out_mat.per_column_attempts, np.array([3, 3]))

    out_vec2 = r_vec2.future._result
    assert np.array_equal(out_vec2.value, (np.arange(6.0) + 100.0) * 2.0)
    assert out_vec2.input_scale == 4.0

    counters = registry.get("bob").counters
    assert counters.completed == 1
    assert counters.columns_dispatched == 2


def test_failed_column_rejects_only_its_own_future():
    # Column 1 (bob's) stays railed after ranging; siblings are clean.
    op = _StubOperator("d", column_saturated=[False, True, False])
    r_a = _req("alice", op, np.ones(6))
    r_b = _req("bob", op, np.ones(6) * 5)
    r_c = _req("carol", op, np.ones(6) * 2)
    (batch,) = coalesce([r_a, r_b, r_c])
    registry = _registry()
    batch.scatter(batch.execute(), registry)

    assert r_a.future._result is not None
    assert r_c.future._result is not None
    error = r_b.future._exception
    assert isinstance(error, ColumnRangingError)
    # The structured error carries the out-of-range slice for diagnosis.
    assert error.result is not None and error.result.saturated
    assert registry.get("bob").counters.failed == 1
    assert registry.get("alice").counters.completed == 1


def test_require_in_range_false_returns_flagged_result():
    op = _StubOperator("d", column_saturated=[True])
    request = _req("alice", op, np.ones(6), require_in_range=False)
    (batch,) = coalesce([request])
    batch.scatter(batch.execute(), _registry())
    result = request.future._result
    assert result is not None and result.saturated


def test_cancelled_future_is_skipped_at_scatter():
    op = _StubOperator("d")
    r_live = _req("alice", op, np.ones(6))
    r_dead = _req("bob", op, np.ones(6))
    (batch,) = coalesce([r_live, r_dead])
    result = batch.execute()
    r_dead.future.cancel()  # client vanished mid-window
    batch.scatter(result, _registry())
    assert r_live.future._result is not None
    assert r_dead.future._result is None and r_dead.future._exception is None


def test_eigvec_requests_dedupe_to_one_engine_call():
    op = _StubOperator("d")
    requests = [_req(t, op, None, kind="eigvec") for t in ("alice", "bob", "carol")]
    (batch,) = coalesce(requests)
    batch.scatter(batch.execute(), _registry())
    assert op.calls == [("eigvec",)]  # one settling for all three
    values = [r.future._result.value for r in requests]
    assert all(np.array_equal(values[0], v) for v in values[1:])


def test_unstable_batch_fails_every_request():
    op = _StubOperator("d", stable=False)
    requests = [_req("alice", op, np.ones(6)), _req("bob", op, np.ones(6))]
    (batch,) = coalesce(requests)
    registry = _registry()
    batch.scatter(batch.execute(), registry)
    for request in requests:
        assert isinstance(request.future._exception, ColumnRangingError)
    assert registry.get("alice").counters.failed == 1
    assert registry.get("bob").counters.failed == 1
