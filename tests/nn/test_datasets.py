"""SynthDigits dataset tests."""

import numpy as np
import pytest

from repro.nn.datasets import IMAGE_SIZE, NUM_CLASSES, render_digit, synth_digits


class TestRenderer:
    def test_image_shape_and_range(self):
        image = render_digit(3, np.random.default_rng(0))
        assert image.shape == (IMAGE_SIZE, IMAGE_SIZE)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_digit_has_ink(self):
        for digit in range(10):
            image = render_digit(digit, np.random.default_rng(digit))
            assert image.sum() > 5.0, f"digit {digit} rendered empty"

    def test_instances_differ(self):
        rng = np.random.default_rng(1)
        a = render_digit(7, rng)
        b = render_digit(7, rng)
        assert not np.array_equal(a, b)

    def test_unknown_digit_rejected(self):
        with pytest.raises(ValueError):
            render_digit(10, np.random.default_rng(0))

    def test_classes_are_distinguishable(self):
        """Mean images of different digits must differ substantially."""
        rng = np.random.default_rng(2)
        means = []
        for digit in (0, 1):
            stack = np.stack([render_digit(digit, rng) for _ in range(20)])
            means.append(stack.mean(axis=0))
        difference = np.abs(means[0] - means[1]).mean()
        assert difference > 0.05


class TestDataset:
    def test_shapes(self):
        data = synth_digits(50, rng=np.random.default_rng(3))
        assert data.images.shape == (50, 1, IMAGE_SIZE, IMAGE_SIZE)
        assert data.labels.shape == (50,)
        assert len(data) == 50

    def test_balanced_classes(self):
        data = synth_digits(100, rng=np.random.default_rng(4))
        counts = np.bincount(data.labels, minlength=NUM_CLASSES)
        assert counts.min() == counts.max() == 10

    def test_reproducible(self):
        a = synth_digits(20, rng=np.random.default_rng(5))
        b = synth_digits(20, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_subset(self):
        data = synth_digits(30, rng=np.random.default_rng(6))
        sub = data.subset(np.arange(5))
        assert len(sub) == 5

    def test_batches_cover_epoch(self):
        data = synth_digits(25, rng=np.random.default_rng(7))
        seen = 0
        for images, labels in data.batches(8, np.random.default_rng(8)):
            assert images.shape[0] == labels.shape[0]
            seen += labels.shape[0]
        assert seen == 25

    def test_difficulty_increases_noise(self):
        easy = synth_digits(30, rng=np.random.default_rng(9), difficulty=0.3)
        hard = synth_digits(30, rng=np.random.default_rng(9), difficulty=2.0)
        # Heavier distortions raise background (off-stroke) intensity spread.
        assert hard.images.std() != easy.images.std()
