"""Layer tests: im2col correctness, forward math, numeric gradients."""

import numpy as np
import pytest

from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    col2im,
    im2col,
    softmax_cross_entropy,
)


class TestIm2Col:
    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(0)
        images = rng.standard_normal((2, 3, 8, 8))
        kernel = rng.standard_normal((4, 3, 3, 3))
        cols = im2col(images, 3)
        out = cols @ kernel.reshape(4, -1).T  # (n, positions, out_c)
        out = out.transpose(0, 2, 1).reshape(2, 4, 6, 6)
        # Naive reference
        naive = np.zeros((2, 4, 6, 6))
        for n in range(2):
            for f in range(4):
                for i in range(6):
                    for j in range(6):
                        patch = images[n, :, i : i + 3, j : j + 3]
                        naive[n, f, i, j] = np.sum(patch * kernel[f])
        np.testing.assert_allclose(out, naive, rtol=1e-10)

    def test_col2im_is_adjoint(self):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 2, 6, 6))
        cols = im2col(x, 3)
        y = rng.standard_normal(cols.shape)
        lhs = np.sum(cols * y)
        rhs = np.sum(x * col2im(y, x.shape, 3))
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestForward:
    def test_conv_output_shape(self):
        conv = Conv2D(1, 6, 5, np.random.default_rng(0))
        out = conv.forward(np.zeros((3, 1, 28, 28)))
        assert out.shape == (3, 6, 24, 24)

    def test_dense_math(self):
        dense = Dense(4, 2, np.random.default_rng(1))
        x = np.random.default_rng(2).standard_normal((5, 4))
        np.testing.assert_allclose(dense.forward(x), x @ dense.weight.T + dense.bias)

    def test_maxpool(self):
        pool = MaxPool2D()
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_relu_and_flatten(self):
        x = np.array([[[[-1.0, 2.0], [3.0, -4.0]]]])
        activated = ReLU().forward(x)
        assert activated.min() == 0.0
        flat = Flatten().forward(activated)
        assert flat.shape == (1, 4)


class TestGradients:
    def _numeric_gradient(self, f, x, eps=1e-6):
        grad = np.zeros_like(x)
        it = np.nditer(x, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = x[idx]
            x[idx] = orig + eps
            hi = f()
            x[idx] = orig - eps
            lo = f()
            x[idx] = orig
            grad[idx] = (hi - lo) / (2 * eps)
            it.iternext()
        return grad

    def test_dense_weight_gradient(self):
        rng = np.random.default_rng(3)
        dense = Dense(5, 3, rng)
        x = rng.standard_normal((4, 5))
        labels = np.array([0, 1, 2, 1])

        def loss():
            logits = dense.forward(x, training=True)
            return softmax_cross_entropy(logits, labels)[0]

        logits = dense.forward(x, training=True)
        _, grad_logits = softmax_cross_entropy(logits, labels)
        dense.backward(grad_logits)
        numeric = self._numeric_gradient(loss, dense.weight)
        np.testing.assert_allclose(dense.grad_weight, numeric, atol=1e-5)

    def test_conv_weight_gradient(self):
        rng = np.random.default_rng(4)
        conv = Conv2D(1, 2, 3, rng)
        x = rng.standard_normal((2, 1, 5, 5))
        labels = np.array([0, 1])

        def loss():
            out = conv.forward(x, training=True)
            logits = out.reshape(2, -1)[:, :2]
            return softmax_cross_entropy(logits, labels)[0]

        out = conv.forward(x, training=True)
        logits = out.reshape(2, -1)[:, :2]
        _, grad_logits = softmax_cross_entropy(logits, labels)
        grad_out = np.zeros_like(out.reshape(2, -1))
        grad_out[:, :2] = grad_logits
        conv.backward(grad_out.reshape(out.shape))
        numeric = self._numeric_gradient(loss, conv.weight)
        np.testing.assert_allclose(conv.grad_weight, numeric, atol=1e-5)

    def test_input_gradient_through_stack(self):
        """Backprop through conv→relu→pool→flatten→dense vs numeric."""
        rng = np.random.default_rng(5)
        conv = Conv2D(1, 2, 3, rng)
        pool = MaxPool2D()
        relu = ReLU()
        flatten = Flatten()
        dense = Dense(8, 3, rng)
        x = rng.standard_normal((1, 1, 6, 6))
        labels = np.array([1])

        def forward_loss():
            h = conv.forward(x, training=True)
            h = relu.forward(h, training=True)
            h = pool.forward(h, training=True)
            h = flatten.forward(h, training=True)
            logits = dense.forward(h, training=True)
            return softmax_cross_entropy(logits, labels)[0]

        forward_loss()
        h = conv.forward(x, training=True)
        h = relu.forward(h, training=True)
        h = pool.forward(h, training=True)
        h = flatten.forward(h, training=True)
        logits = dense.forward(h, training=True)
        _, grad = softmax_cross_entropy(logits, labels)
        grad = dense.backward(grad)
        grad = flatten.backward(grad)
        grad = pool.backward(grad)
        grad = relu.backward(grad)
        grad_x = conv.backward(grad)

        numeric = self._numeric_gradient(forward_loss, x)
        np.testing.assert_allclose(grad_x, numeric, atol=1e-5)


class TestLoss:
    def test_cross_entropy_of_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_gradient_sums_to_zero_per_sample(self):
        rng = np.random.default_rng(6)
        logits = rng.standard_normal((5, 10))
        _, grad = softmax_cross_entropy(logits, rng.integers(0, 10, 5))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)
