"""LeNet-5 model tests: shapes, training, state dict, analog deployment."""

import numpy as np
import pytest

from repro.core.pool import MacroPool, PoolConfig
from repro.core.solver import GramcSolver
from repro.nn.analog_inference import AnalogLeNet5
from repro.nn.datasets import synth_digits
from repro.nn.lenet5 import LeNet5
from repro.nn.train import Adam, train_lenet5


@pytest.fixture(scope="module")
def tiny_data():
    train = synth_digits(1000, rng=np.random.default_rng(1), difficulty=0.8)
    test = synth_digits(120, rng=np.random.default_rng(2), difficulty=0.8)
    return train, test


@pytest.fixture(scope="module")
def trained_model(tiny_data):
    train, test = tiny_data
    model = LeNet5(np.random.default_rng(0))
    train_lenet5(model, train, test, epochs=3, rng=np.random.default_rng(3))
    return model


class TestArchitecture:
    def test_paper_topology_shapes(self):
        """[1,28,28]→[6,24,24]→[6,12,12]→[16,8,8]→[16,4,4]→256→120→84→10."""
        model = LeNet5(np.random.default_rng(0))
        assert model.conv1.weight.shape == (6, 25)
        assert model.conv2.weight.shape == (16, 150)
        assert model.fc1.weight.shape == (120, 256)
        assert model.fc2.weight.shape == (84, 120)
        assert model.fc3.weight.shape == (10, 84)
        logits = model.forward(np.zeros((2, 1, 28, 28)))
        assert logits.shape == (2, 10)

    def test_state_dict_roundtrip(self):
        a = LeNet5(np.random.default_rng(1))
        b = LeNet5(np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        x = np.random.default_rng(3).random((1, 1, 28, 28))
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_parameters_and_gradients_align(self):
        model = LeNet5(np.random.default_rng(4))
        assert len(model.parameters()) == len(model.gradients()) == 10


class TestTraining:
    def test_loss_decreases(self, tiny_data):
        train, test = tiny_data
        model = LeNet5(np.random.default_rng(5))
        report = train_lenet5(model, train, test, epochs=2, rng=np.random.default_rng(6))
        assert report.epoch_losses[-1] < report.epoch_losses[0]

    def test_accuracy_beats_chance(self, trained_model, tiny_data):
        _, test = tiny_data
        assert trained_model.accuracy(test.images, test.labels) > 0.5

    def test_adam_updates_parameters(self):
        params = [np.ones(3)]
        grads = [np.full(3, 0.5)]
        optimizer = Adam(params, lr=0.1)
        optimizer.step(grads)
        assert np.all(params[0] < 1.0)


class TestAnalogDeployment:
    def test_analog_int4_tracks_digital(self, trained_model, tiny_data):
        _, test = tiny_data
        solver = GramcSolver(
            pool=MacroPool(PoolConfig(num_macros=16), rng=np.random.default_rng(7)),
            rng=np.random.default_rng(8),
        )
        analog = AnalogLeNet5(trained_model, solver, bits=4)
        digital_acc = trained_model.accuracy(test.images[:60], test.labels[:60])
        analog_acc = analog.accuracy(test.images[:60], test.labels[:60])
        assert analog_acc > digital_acc - 0.15

    def test_bit_widths_validated(self, trained_model):
        solver = GramcSolver()
        with pytest.raises(ValueError):
            AnalogLeNet5(trained_model, solver, bits=5)

    def test_forward_shapes(self, trained_model):
        solver = GramcSolver(
            pool=MacroPool(PoolConfig(num_macros=16), rng=np.random.default_rng(9)),
            rng=np.random.default_rng(10),
        )
        analog = AnalogLeNet5(trained_model, solver, bits=4)
        logits = analog.forward(np.zeros((2, 1, 28, 28)))
        assert logits.shape == (2, 10)
