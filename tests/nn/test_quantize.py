"""Quantization and bit-slicing tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.quantize import (
    bit_slice_weight,
    quantize_weight,
    quantized_state_dict,
)


class TestQuantizeWeight:
    def test_int8_code_range(self):
        w = np.random.default_rng(0).standard_normal((16, 16))
        q = quantize_weight(w, 8)
        assert q.codes.max() <= 127 and q.codes.min() >= -127

    def test_int4_code_range(self):
        w = np.random.default_rng(1).standard_normal((16, 16))
        q = quantize_weight(w, 4)
        assert q.codes.max() <= 7 and q.codes.min() >= -7

    def test_error_bounded_by_half_step(self):
        w = np.random.default_rng(2).standard_normal((8, 8))
        q = quantize_weight(w, 8)
        assert np.max(np.abs(q.dequantized() - w)) <= q.scale / 2 + 1e-12

    def test_int4_coarser_than_int8(self):
        w = np.random.default_rng(3).standard_normal((32, 32))
        err4 = np.max(np.abs(quantize_weight(w, 4).dequantized() - w))
        err8 = np.max(np.abs(quantize_weight(w, 8).dequantized() - w))
        assert err4 > err8

    def test_zero_matrix(self):
        q = quantize_weight(np.zeros((4, 4)), 4)
        assert np.all(q.codes == 0)

    @given(
        w=arrays(
            dtype=np.float64, shape=(6, 6),
            elements=st.floats(min_value=-5.0, max_value=5.0),
        ),
        bits=st.sampled_from([4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_dequantized_error_property(self, w, bits):
        q = quantize_weight(w, bits)
        assert np.max(np.abs(q.dequantized() - w)) <= q.scale / 2 + 1e-9


class TestBitSlicing:
    def test_reconstruction_matches_int8(self):
        w = np.random.default_rng(4).standard_normal((12, 12))
        q8 = quantize_weight(w, 8)
        sliced = bit_slice_weight(w)
        np.testing.assert_allclose(sliced.dequantized(), q8.dequantized(), atol=1e-12)

    def test_nibble_ranges(self):
        w = np.random.default_rng(5).standard_normal((20, 20))
        sliced = bit_slice_weight(w)
        assert np.max(np.abs(sliced.msb)) <= 7
        assert np.max(np.abs(sliced.lsb)) <= 15

    def test_signs_consistent(self):
        """msb and lsb of one weight never carry opposite signs."""
        w = np.random.default_rng(6).standard_normal((20, 20))
        sliced = bit_slice_weight(w)
        product = sliced.msb * sliced.lsb
        assert np.all(product >= 0)


class TestStateDict:
    def test_only_weights_quantized(self):
        state = {
            "fc1.weight": np.random.default_rng(7).standard_normal((4, 4)),
            "fc1.bias": np.array([0.123456789, -1.0, 0.5, 0.0]),
        }
        quantized = quantized_state_dict(state, 4)
        np.testing.assert_array_equal(quantized["fc1.bias"], state["fc1.bias"])
        assert not np.array_equal(quantized["fc1.weight"], state["fc1.weight"])

    def test_copies_are_independent(self):
        state = {"fc1.bias": np.zeros(3)}
        quantized = quantized_state_dict(state, 8)
        quantized["fc1.bias"][0] = 9.0
        assert state["fc1.bias"][0] == 0.0
