"""PageRank / Markov stationary-distribution application tests."""

import numpy as np
import pytest

from repro.apps.markov import (
    google_matrix,
    pagerank,
    ring_of_cliques,
    stationary_distribution,
)
from repro.core.solver import GramcError


class TestGoogleMatrix:
    def test_column_stochastic(self):
        adjacency = ring_of_cliques(3, 4)
        g = google_matrix(adjacency)
        np.testing.assert_allclose(g.sum(axis=0), 1.0, atol=1e-12)

    def test_strictly_positive(self):
        g = google_matrix(ring_of_cliques(2, 3))
        assert g.min() > 0.0

    def test_dangling_nodes_patched(self):
        adjacency = np.zeros((3, 3))
        adjacency[1, 0] = 1.0  # node 0 links to 1; nodes 1, 2 dangle
        g = google_matrix(adjacency)
        np.testing.assert_allclose(g.sum(axis=0), 1.0, atol=1e-12)

    def test_damping_validation(self):
        with pytest.raises(ValueError):
            google_matrix(np.zeros((2, 2)), damping=1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            google_matrix(np.zeros((2, 3)))


class TestStationaryDistribution:
    def test_pagerank_on_ring_of_cliques(self, small_solver):
        adjacency = ring_of_cliques(3, 5)
        result = pagerank(small_solver, adjacency)
        # A probability vector…
        assert result.distribution.min() >= 0.0
        assert result.distribution.sum() == pytest.approx(1.0)
        # …close to the reference and nearly stationary.
        assert result.total_variation_error < 0.05
        assert result.residual < 0.1

    def test_matches_power_iteration(self, small_solver):
        g = google_matrix(ring_of_cliques(2, 6), damping=0.9)
        result = stationary_distribution(small_solver, g)
        pi = np.full(12, 1.0 / 12)
        for _ in range(500):
            pi = g @ pi
        assert 0.5 * np.sum(np.abs(result.distribution - pi)) < 0.05

    def test_rejects_non_stochastic(self, small_solver):
        with pytest.raises(GramcError):
            stationary_distribution(small_solver, np.eye(4) * 2.0)

    def test_symmetric_chain_is_uniform(self, small_solver):
        """A doubly-stochastic chain has the uniform stationary vector."""
        n = 8
        chain = np.full((n, n), 0.4 / (n - 1))
        np.fill_diagonal(chain, 0.6)
        result = stationary_distribution(small_solver, chain)
        np.testing.assert_allclose(result.distribution, 1.0 / n, atol=0.03)


class TestRingOfCliques:
    def test_shape_and_symmetric_blocks(self):
        adjacency = ring_of_cliques(4, 3)
        assert adjacency.shape == (12, 12)
        block = adjacency[:3, :3]
        np.testing.assert_allclose(block, block.T)
        assert np.all(np.diag(adjacency) == 0.0)
