"""Analog PCA (EGV + deflation) application tests."""

import numpy as np
import pytest

from repro.apps.pca import analog_pca, correlated_gaussian_data, covariance_matrix
from repro.core.solver import GramcError


@pytest.fixture()
def spiked_data(rng):
    # Strong spectral decay: components are well separated.
    spectrum = np.array([8.0, 3.0, 0.4, 0.2, 0.1, 0.1, 0.05, 0.05])
    return correlated_gaussian_data(400, spectrum, rng=rng)


class TestCovariance:
    def test_symmetric_psd(self, spiked_data):
        cov = covariance_matrix(spiked_data)
        np.testing.assert_allclose(cov, cov.T)
        assert np.min(np.linalg.eigvalsh(cov)) >= -1e-10

    def test_centered(self, rng):
        data = rng.standard_normal((100, 4)) + 10.0  # large mean offset
        cov = covariance_matrix(data)
        reference = np.cov(data, rowvar=False)
        np.testing.assert_allclose(cov, reference, rtol=1e-9)


class TestAnalogPCA:
    def test_first_component_aligns(self, small_solver, spiked_data):
        result = analog_pca(small_solver, spiked_data, num_components=1)
        assert result.subspace_alignment[0] > 0.95

    def test_two_components_via_deflation(self, small_solver, spiked_data):
        result = analog_pca(small_solver, spiked_data, num_components=2)
        assert result.subspace_alignment[0] > 0.95
        assert result.subspace_alignment[1] > 0.85  # deflation noise compounds

    def test_explained_variance_ordered(self, small_solver, spiked_data):
        result = analog_pca(small_solver, spiked_data, num_components=2)
        assert result.explained_variance[0] > result.explained_variance[1]

    def test_components_unit_norm(self, small_solver, spiked_data):
        result = analog_pca(small_solver, spiked_data, num_components=2)
        np.testing.assert_allclose(
            np.linalg.norm(result.components, axis=1), 1.0, atol=1e-9
        )

    def test_explained_variance_near_spectrum(self, small_solver, spiked_data):
        result = analog_pca(small_solver, spiked_data, num_components=1)
        top_true = float(np.linalg.eigvalsh(covariance_matrix(spiked_data))[-1])
        assert result.explained_variance[0] == pytest.approx(top_true, rel=0.1)

    def test_validation(self, small_solver, spiked_data):
        with pytest.raises(GramcError):
            analog_pca(small_solver, spiked_data, num_components=0)
        with pytest.raises(GramcError):
            analog_pca(small_solver, np.zeros(5), num_components=1)
