"""EGV topology tests: eigenvector recovery, growth condition, sign."""

import numpy as np
import pytest

from repro.analog.egv import EgvCircuit, estimate_dominant_eigenvalue
from repro.analog.opamp import OpAmpParams
from repro.arrays.mapping import DifferentialMapping
from repro.workloads.matrices import gram


def _gram_planes(seed=0, n=12, rank=3):
    data = np.random.default_rng(seed).standard_normal((n, rank * 4))
    # Low-rank-ish Gram matrix: clear dominant eigenvalue.
    matrix = gram(data)
    mapping = DifferentialMapping.from_matrix(matrix)
    return matrix, mapping


def _dominant(matrix):
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    vector = eigenvectors[:, -1]
    pivot = int(np.argmax(np.abs(vector)))
    return eigenvalues[-1], vector if vector[pivot] >= 0 else -vector


class TestEigenvalueEstimate:
    def test_power_iteration_converges(self):
        matrix, _ = _gram_planes(0)
        true_value, _ = _dominant(matrix)
        estimate = estimate_dominant_eigenvalue(matrix, iterations=50)
        assert estimate == pytest.approx(true_value, rel=1e-3)

    def test_zero_matrix(self):
        assert estimate_dominant_eigenvalue(np.zeros((4, 4))) == 0.0


class TestStaticSolve:
    def test_recovers_dominant_eigenvector(self):
        matrix, mapping = _gram_planes(1)
        _, reference = _dominant(matrix)
        lam = estimate_dominant_eigenvalue(mapping.decode()) * 0.93
        circuit = EgvCircuit(
            mapping.g_pos, mapping.g_neg, g_lambda=lam / mapping.value_scale,
            rng=np.random.default_rng(2),
        )
        solution = circuit.static_solve(noisy=False)
        assert solution.stable
        vector = circuit.eigenvector(solution)
        assert abs(vector @ reference) > 0.97

    def test_no_growth_when_lambda_above_spectrum(self):
        matrix, mapping = _gram_planes(3)
        lam_too_big = estimate_dominant_eigenvalue(mapping.decode()) * 1.5
        circuit = EgvCircuit(
            mapping.g_pos, mapping.g_neg,
            g_lambda=lam_too_big / mapping.value_scale,
            rng=np.random.default_rng(4),
        )
        solution = circuit.static_solve(noisy=False)
        assert not solution.stable  # the loop never grows

    def test_sign_convention_pivot_positive(self):
        _, mapping = _gram_planes(5)
        lam = estimate_dominant_eigenvalue(mapping.decode()) * 0.93
        circuit = EgvCircuit(
            mapping.g_pos, mapping.g_neg, g_lambda=lam / mapping.value_scale,
            rng=np.random.default_rng(6),
        )
        vector = circuit.eigenvector(circuit.static_solve(noisy=False))
        assert vector[int(np.argmax(np.abs(vector)))] >= 0.0

    def test_requires_positive_g_lambda(self):
        _, mapping = _gram_planes(7)
        with pytest.raises(ValueError):
            EgvCircuit(mapping.g_pos, mapping.g_neg, g_lambda=0.0)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            EgvCircuit(np.full((3, 4), 1e-5), None, g_lambda=1e-5)


class TestTransient:
    def test_transient_recovers_eigenvector(self):
        matrix, mapping = _gram_planes(8)
        _, reference = _dominant(matrix)
        lam = estimate_dominant_eigenvalue(mapping.decode()) * 0.93
        circuit = EgvCircuit(
            mapping.g_pos, mapping.g_neg, g_lambda=lam / mapping.value_scale,
            params=OpAmpParams(offset_sigma=2e-4, noise_sigma=0.0),
            rng=np.random.default_rng(9),
        )
        solution = circuit.transient_solve()
        assert solution.stable
        vector = circuit.eigenvector(solution)
        assert abs(vector @ reference) > 0.97

    def test_amplitude_set_by_saturation(self):
        """The steady output amplitude sits near the rails, not at the seed."""
        _, mapping = _gram_planes(10)
        lam = estimate_dominant_eigenvalue(mapping.decode()) * 0.9
        params = OpAmpParams(v_sat=1.2, offset_sigma=2e-4, noise_sigma=0.0)
        circuit = EgvCircuit(
            mapping.g_pos, mapping.g_neg, g_lambda=lam / mapping.value_scale,
            params=params, rng=np.random.default_rng(11),
        )
        solution = circuit.transient_solve()
        assert float(np.max(np.abs(solution.outputs))) > 0.2 * params.v_sat

    def test_offsets_seed_the_growth(self):
        """With zero offsets the numerical seed still starts the loop."""
        _, mapping = _gram_planes(12)
        lam = estimate_dominant_eigenvalue(mapping.decode()) * 0.9
        circuit = EgvCircuit(
            mapping.g_pos, mapping.g_neg, g_lambda=lam / mapping.value_scale,
            params=OpAmpParams(offset_sigma=0.0, noise_sigma=0.0),
            rng=np.random.default_rng(13),
        )
        solution = circuit.static_solve(noisy=False)
        assert solution.stable
