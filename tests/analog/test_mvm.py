"""MVM topology tests: vs numpy, noise budget, saturation."""

import numpy as np
import pytest

from repro.analog.mvm import MVMCircuit
from repro.analog.opamp import IDEAL_OPAMP, OpAmpParams
from repro.arrays.mapping import DifferentialMapping


def _planes(seed=0, n=12):
    matrix = np.random.default_rng(seed).uniform(-1.0, 1.0, size=(n, n))
    mapping = DifferentialMapping.from_matrix(matrix)
    return matrix, mapping


class TestIdealAccuracy:
    def test_matches_quantized_matmul_with_ideal_amps(self):
        _, mapping = _planes(0)
        circuit = MVMCircuit(
            mapping.g_pos, mapping.g_neg, params=IDEAL_OPAMP, g_f=1e-3,
            rng=np.random.default_rng(1),
        )
        v = np.random.default_rng(2).uniform(-0.3, 0.3, 12)
        solution = circuit.solve(v, noisy=False)
        expected = circuit.ideal_output(v)
        np.testing.assert_allclose(solution.outputs, expected, rtol=1e-6)

    def test_unipolar_circuit(self):
        g = np.random.default_rng(3).uniform(1e-6, 9e-5, size=(6, 6))
        circuit = MVMCircuit(g, params=IDEAL_OPAMP, g_f=1e-3, rng=np.random.default_rng(0))
        v = np.full(6, 0.2)
        solution = circuit.solve(v, noisy=False)
        np.testing.assert_allclose(solution.outputs, -(g @ v) / 1e-3, rtol=1e-6)

    def test_decoded_product_tracks_true_product(self):
        matrix, mapping = _planes(4)
        circuit = MVMCircuit(
            mapping.g_pos, mapping.g_neg, params=IDEAL_OPAMP, g_f=1e-3,
            rng=np.random.default_rng(5),
        )
        v = np.random.default_rng(6).uniform(-0.3, 0.3, 12)
        solution = circuit.solve(v, noisy=False)
        product = -solution.outputs * 1e-3 * mapping.value_scale
        reference = matrix @ v
        error = np.linalg.norm(product - reference) / np.linalg.norm(reference)
        assert error < 0.12  # 4-bit quantization only


class TestNonIdealities:
    def test_noise_perturbs_output(self):
        _, mapping = _planes(7)
        params = OpAmpParams(noise_sigma=1e-3)
        circuit = MVMCircuit(
            mapping.g_pos, mapping.g_neg, params=params, g_f=1e-3,
            rng=np.random.default_rng(8),
        )
        v = np.full(12, 0.2)
        a = circuit.solve(v).outputs
        b = circuit.solve(v).outputs
        assert not np.array_equal(a, b)
        assert np.std(a - b) < 5e-3

    def test_finite_gain_biases_toward_zero(self):
        g = np.full((4, 4), 5e-5)
        weak = MVMCircuit(
            g, params=OpAmpParams(a0=200.0, offset_sigma=0.0, noise_sigma=0.0),
            g_f=1e-3, rng=np.random.default_rng(0),
        )
        v = np.full(4, 0.3)
        out_weak = weak.solve(v, noisy=False).outputs
        ideal = -(g @ v) / 1e-3
        assert np.all(np.abs(out_weak) < np.abs(ideal))

    def test_saturation_flagged(self):
        g = np.full((4, 4), 9e-5)
        circuit = MVMCircuit(
            g, params=OpAmpParams(v_sat=0.1, offset_sigma=0.0, noise_sigma=0.0),
            g_f=1e-4, rng=np.random.default_rng(0),
        )
        solution = circuit.solve(np.full(4, 0.5), noisy=False)
        assert solution.saturated
        assert np.all(np.abs(solution.outputs) <= 0.1 + 1e-12)

    def test_settling_time_reported(self):
        _, mapping = _planes(9)
        circuit = MVMCircuit(
            mapping.g_pos, mapping.g_neg, g_f=1e-3, rng=np.random.default_rng(0)
        )
        solution = circuit.solve(np.zeros(12))
        assert solution.settling_time is not None and solution.settling_time > 0


class TestBatched:
    def test_batched_solve_matches_loop(self):
        _, mapping = _planes(10)
        circuit = MVMCircuit(
            mapping.g_pos, mapping.g_neg, params=IDEAL_OPAMP, g_f=1e-3,
            rng=np.random.default_rng(11),
        )
        batch = np.random.default_rng(12).uniform(-0.3, 0.3, size=(12, 7))
        solution = circuit.solve(batch, noisy=False)
        assert solution.outputs.shape == (12, 7)
        for k in range(7):
            np.testing.assert_allclose(
                solution.outputs[:, k],
                circuit.solve(batch[:, k], noisy=False).outputs,
                rtol=1e-9,
            )


class TestValidation:
    def test_rejects_wrong_input_length(self):
        g = np.full((3, 5), 1e-5)
        circuit = MVMCircuit(g, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            circuit.solve(np.zeros(3))

    def test_rejects_mismatched_planes(self):
        with pytest.raises(ValueError):
            MVMCircuit(np.ones((3, 3)) * 1e-5, np.ones((3, 4)) * 1e-5)

    def test_rejects_wrong_bank_size(self):
        from repro.analog.opamp import OpAmpBank

        g = np.full((3, 3), 1e-5)
        bank = OpAmpBank.sample(2, OpAmpParams(), np.random.default_rng(0))
        with pytest.raises(ValueError):
            MVMCircuit(g, row_amps=bank)
