"""Sanity checks on the topology descriptor table."""

import pytest

from repro.analog.topologies import AMCMode, TOPOLOGIES, descriptor


class TestDescriptors:
    def test_all_modes_registered(self):
        assert set(TOPOLOGIES) == set(AMCMode)

    def test_mvm_is_feedforward(self):
        assert not descriptor(AMCMode.MVM).closes_loop

    @pytest.mark.parametrize("mode", [AMCMode.INV, AMCMode.PINV, AMCMode.EGV])
    def test_solvers_close_loops(self, mode):
        assert descriptor(mode).closes_loop

    def test_pinv_needs_two_arrays(self):
        assert descriptor(AMCMode.PINV).arrays_required == 2

    def test_egv_needs_no_input_vector(self):
        assert not descriptor(AMCMode.EGV).needs_input_vector
        assert descriptor(AMCMode.MVM).needs_input_vector

    def test_descriptor_mode_matches_key(self):
        for mode, desc in TOPOLOGIES.items():
            assert desc.mode is mode
