"""Unit tests for the op-amp macro-model."""

import math

import numpy as np
import pytest

from repro.analog.opamp import IDEAL_OPAMP, OpAmpBank, OpAmpParams


class TestParams:
    def test_tau_formula(self):
        params = OpAmpParams(a0=1e5, gbw=1e7)
        assert params.tau == pytest.approx(1e5 / (2.0 * math.pi * 1e7))

    def test_saturate_clamps_symmetric(self):
        params = OpAmpParams(v_sat=1.0)
        out = params.saturate(np.array([-5.0, -0.5, 0.5, 5.0]))
        np.testing.assert_allclose(out, [-1.0, -0.5, 0.5, 1.0])

    def test_soft_saturate_matches_linear_small_signal(self):
        params = OpAmpParams(v_sat=1.0)
        v = np.array([0.01, -0.02])
        np.testing.assert_allclose(params.soft_saturate(v), v, rtol=1e-3)

    def test_soft_saturate_bounded(self):
        params = OpAmpParams(v_sat=1.2)
        out = params.soft_saturate(np.array([100.0, -100.0]))
        assert np.all(np.abs(out) <= 1.2)

    def test_ideal_opamp_is_quiet(self):
        assert IDEAL_OPAMP.offset_sigma == 0.0
        assert IDEAL_OPAMP.noise_sigma == 0.0
        assert IDEAL_OPAMP.a0 >= 1e8


class TestBank:
    def test_sample_shapes_and_spread(self):
        params = OpAmpParams(offset_sigma=1e-3)
        bank = OpAmpBank.sample(500, params, np.random.default_rng(0))
        assert len(bank) == 500
        assert np.std(bank.offsets) == pytest.approx(1e-3, rel=0.2)

    def test_zero_sigma_zero_offsets(self):
        bank = OpAmpBank.sample(10, OpAmpParams(offset_sigma=0.0), np.random.default_rng(0))
        assert np.all(bank.offsets == 0.0)

    def test_output_noise_draws(self):
        params = OpAmpParams(noise_sigma=1e-3)
        bank = OpAmpBank.sample(1000, params, np.random.default_rng(1))
        noise = bank.output_noise(np.random.default_rng(2))
        assert np.std(noise) == pytest.approx(1e-3, rel=0.2)

    def test_output_noise_disabled(self):
        bank = OpAmpBank.sample(10, OpAmpParams(noise_sigma=0.0), np.random.default_rng(1))
        assert np.all(bank.output_noise(np.random.default_rng(2)) == 0.0)
