"""PINV topology tests: least squares vs numpy pinv, ridge effect."""

import numpy as np
import pytest

from repro.analog.opamp import IDEAL_OPAMP, OpAmpParams
from repro.analog.pinv import PinvCircuit
from repro.arrays.mapping import DifferentialMapping


def _circuit(seed=0, m=18, n=5, params=None, g_f=1e-3):
    matrix = np.random.default_rng(seed).standard_normal((m, n))
    map_a = DifferentialMapping.from_matrix(matrix)
    map_at = DifferentialMapping.from_matrix(matrix.T)
    circuit = PinvCircuit(
        map_a.g_pos, map_a.g_neg, map_at.g_pos, map_at.g_neg,
        params=params or IDEAL_OPAMP, g_f=g_f, rng=np.random.default_rng(seed + 1),
    )
    return matrix, map_a, circuit


class TestStaticSolve:
    def test_matches_ideal_pseudoinverse(self):
        _, _, circuit = _circuit(0)
        i_in = np.random.default_rng(2).uniform(-2e-5, 2e-5, 18)
        solution = circuit.static_solve(i_in, noisy=False)
        np.testing.assert_allclose(
            solution.outputs, circuit.ideal_solution(i_in), rtol=1e-3, atol=1e-9
        )

    def test_solves_normal_equations(self):
        """The equilibrium satisfies Gᵀ(G·x + i) ≈ 0."""
        _, map_a, circuit = _circuit(3)
        i_in = np.random.default_rng(4).uniform(-2e-5, 2e-5, 18)
        x = circuit.static_solve(i_in, noisy=False).outputs
        a1 = map_a.g_pos - map_a.g_neg
        residual_gradient = a1.T @ (a1 @ x + i_in)
        assert np.linalg.norm(residual_gradient) / np.linalg.norm(a1.T @ i_in) < 1e-3

    def test_finite_gain_acts_as_ridge(self):
        """Low stage-2 gain biases the solution toward zero (ridge shrinkage)."""
        i_in = np.full(18, 1e-5)
        _, _, strong = _circuit(5, params=OpAmpParams(a0=1e7, offset_sigma=0, noise_sigma=0))
        _, _, weak = _circuit(5, params=OpAmpParams(a0=3e2, offset_sigma=0, noise_sigma=0))
        x_strong = strong.static_solve(i_in, noisy=False).outputs
        x_weak = weak.static_solve(i_in, noisy=False).outputs
        assert np.linalg.norm(x_weak) < np.linalg.norm(x_strong)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PinvCircuit(
                np.full((3, 5), 1e-5), None, np.full((5, 3), 1e-5), None
            )  # m < n
        with pytest.raises(ValueError):
            PinvCircuit(
                np.full((5, 3), 1e-5), None, np.full((5, 3), 1e-5), None
            )  # bad transpose shape

    def test_input_length_checked(self):
        _, _, circuit = _circuit(6)
        with pytest.raises(ValueError):
            circuit.static_solve(np.zeros(5))


class TestTransient:
    def test_transient_agrees_with_static(self):
        params = OpAmpParams(offset_sigma=0.0, noise_sigma=0.0)
        _, _, circuit = _circuit(7, params=params)
        i_in = np.random.default_rng(8).uniform(-1e-5, 1e-5, 18)
        static = circuit.static_solve(i_in, noisy=False)
        transient = circuit.transient_solve(i_in)
        assert transient.stable
        np.testing.assert_allclose(transient.outputs, static.outputs, rtol=0.03, atol=1e-6)

    def test_loop_is_stable(self):
        _, _, circuit = _circuit(9)
        system = circuit.system(np.zeros(18))
        assert system.is_stable


class TestIndependentArrays:
    def test_transpose_array_quantization_is_independent(self):
        """G and Gᵀ are programmed separately; their planes differ slightly."""
        matrix = np.random.default_rng(10).standard_normal((12, 4))
        map_a = DifferentialMapping.from_matrix(matrix)
        map_at = DifferentialMapping.from_matrix(matrix.T)
        # Quantized decodes agree only up to quantization, not exactly.
        assert np.max(np.abs(map_a.decode().T - map_at.decode())) <= (
            map_a.value_scale * map_a.level_map.step
        )
