"""Unit tests for TIA and inverter blocks."""

import numpy as np
import pytest

from repro.analog.blocks import InverterBank, TIABank
from repro.analog.opamp import IDEAL_OPAMP, OpAmpBank, OpAmpParams


def _ideal_bank(n: int) -> OpAmpBank:
    return OpAmpBank.sample(n, IDEAL_OPAMP, np.random.default_rng(0))


class TestTIA:
    def test_ideal_transfer_is_minus_i_over_gf(self):
        tia = TIABank(_ideal_bank(4), g_f=1e-3)
        currents = np.array([1e-4, -2e-4, 5e-5, 0.0])
        g_node = np.full(4, 5e-4)
        np.testing.assert_allclose(
            tia.transfer(currents, g_node), -currents / 1e-3, rtol=1e-6
        )

    def test_finite_gain_error_scales_with_noise_gain(self):
        params = OpAmpParams(a0=1e3, offset_sigma=0.0, noise_sigma=0.0)
        bank = OpAmpBank.sample(1, params, np.random.default_rng(0))
        tia = TIABank(bank, g_f=1e-3)
        current = np.array([1e-4])
        light = tia.transfer(current, np.array([1e-4]))
        heavy = tia.transfer(current, np.array([1e-2]))
        ideal = -1e-4 / 1e-3
        assert abs(heavy[0] - ideal) > abs(light[0] - ideal)

    def test_offset_amplified_by_noise_gain(self):
        params = OpAmpParams(a0=1e7, offset_sigma=0.0, noise_sigma=0.0)
        bank = OpAmpBank(params, offsets=np.array([1e-3]))
        tia = TIABank(bank, g_f=1e-3)
        out = tia.transfer(np.array([0.0]), np.array([9e-3]))
        # noise gain = 1 + g_node/g_f = 10
        assert out[0] == pytest.approx(1e-3 * 10.0, rel=1e-3)

    def test_batched_transfer_matches_loop(self):
        bank = _ideal_bank(3)
        tia = TIABank(bank, g_f=2e-3)
        currents = np.random.default_rng(1).uniform(-1e-4, 1e-4, size=(3, 5))
        g_node = np.array([1e-4, 2e-4, 3e-4])
        batched = tia.transfer(currents, g_node)
        for k in range(5):
            np.testing.assert_allclose(batched[:, k], tia.transfer(currents[:, k], g_node))

    def test_output_saturates(self):
        params = OpAmpParams(v_sat=1.0, offset_sigma=0.0, noise_sigma=0.0)
        bank = OpAmpBank.sample(1, params, np.random.default_rng(0))
        tia = TIABank(bank, g_f=1e-4)
        out = tia.output(np.array([1e-2]), np.array([1e-4]), np.random.default_rng(0))
        assert out[0] == pytest.approx(-1.0)


class TestInverter:
    def test_ideal_inversion(self):
        inverter = InverterBank(_ideal_bank(4))
        v = np.array([0.5, -0.25, 0.0, 1.0])
        np.testing.assert_allclose(inverter.invert(v), -v, rtol=1e-6)

    def test_finite_gain_shrinks_magnitude(self):
        params = OpAmpParams(a0=100.0, offset_sigma=0.0, noise_sigma=0.0)
        bank = OpAmpBank.sample(1, params, np.random.default_rng(0))
        inverter = InverterBank(bank)
        out = inverter.invert(np.array([1.0]))
        assert out[0] == pytest.approx(-100.0 / 102.0, rel=1e-9)

    def test_offset_doubled_at_output(self):
        params = OpAmpParams(a0=1e9, offset_sigma=0.0, noise_sigma=0.0)
        bank = OpAmpBank(params, offsets=np.array([1e-3]))
        inverter = InverterBank(bank)
        out = inverter.invert(np.array([0.0]))
        assert out[0] == pytest.approx(2e-3, rel=1e-6)

    def test_batched_inversion(self):
        inverter = InverterBank(_ideal_bank(2))
        v = np.array([[0.1, 0.2, 0.3], [-0.1, -0.2, -0.3]])
        np.testing.assert_allclose(inverter.invert(v), -v, rtol=1e-6)
