"""INV topology tests: static vs transient vs numpy, stability."""

import numpy as np
import pytest

from repro.analog.inv import InvCircuit
from repro.analog.opamp import IDEAL_OPAMP, OpAmpParams
from repro.arrays.mapping import DifferentialMapping
from repro.workloads.matrices import wishart


def _spd_planes(seed=0, n=10):
    matrix = wishart(n, rng=np.random.default_rng(seed)) + 0.3 * np.eye(n)
    mapping = DifferentialMapping.from_matrix(matrix)
    return matrix, mapping


class TestStaticSolve:
    def test_matches_numpy_inverse_with_ideal_amps(self):
        _, mapping = _spd_planes(0)
        circuit = InvCircuit(
            mapping.g_pos, mapping.g_neg, params=IDEAL_OPAMP,
            rng=np.random.default_rng(1),
        )
        i_in = np.random.default_rng(2).uniform(-1e-5, 1e-5, 10)
        solution = circuit.static_solve(i_in, noisy=False)
        np.testing.assert_allclose(
            solution.outputs, circuit.ideal_solution(i_in), rtol=1e-4
        )

    def test_finite_gain_error_shrinks_with_a0(self):
        _, mapping = _spd_planes(3)
        i_in = np.full(10, 5e-6)
        errors = []
        for a0 in (1e3, 1e5, 1e7):
            circuit = InvCircuit(
                mapping.g_pos, mapping.g_neg,
                params=OpAmpParams(a0=a0, offset_sigma=0.0, noise_sigma=0.0),
                rng=np.random.default_rng(0),
            )
            ideal = circuit.ideal_solution(i_in)
            got = circuit.static_solve(i_in, noisy=False).outputs
            errors.append(np.linalg.norm(got - ideal) / np.linalg.norm(ideal))
        assert errors[0] > errors[1] > errors[2]

    def test_unipolar_solve(self):
        g = np.diag(np.full(5, 6e-5)) + np.full((5, 5), 2e-6)
        circuit = InvCircuit(g, params=IDEAL_OPAMP, rng=np.random.default_rng(0))
        i_in = np.full(5, 3e-6)
        solution = circuit.static_solve(i_in, noisy=False)
        np.testing.assert_allclose(
            solution.outputs, -np.linalg.solve(g, i_in), rtol=1e-5
        )

    def test_input_shape_checked(self):
        _, mapping = _spd_planes(4)
        circuit = InvCircuit(mapping.g_pos, mapping.g_neg, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            circuit.static_solve(np.zeros(3))

    def test_requires_square(self):
        with pytest.raises(ValueError):
            InvCircuit(np.full((3, 4), 1e-5))


class TestTransient:
    def test_transient_agrees_with_static(self):
        _, mapping = _spd_planes(5)
        params = OpAmpParams(offset_sigma=0.0, noise_sigma=0.0)
        circuit = InvCircuit(
            mapping.g_pos, mapping.g_neg, params=params, rng=np.random.default_rng(6)
        )
        i_in = np.random.default_rng(7).uniform(-8e-6, 8e-6, 10)
        static = circuit.static_solve(i_in, noisy=False)
        transient = circuit.transient_solve(i_in)
        assert transient.stable
        np.testing.assert_allclose(transient.outputs, static.outputs, rtol=0.02)

    def test_settling_time_microseconds(self):
        """The 'one-step' claim: settle in microseconds at any size."""
        _, mapping = _spd_planes(8)
        circuit = InvCircuit(mapping.g_pos, mapping.g_neg, rng=np.random.default_rng(0))
        solution = circuit.transient_solve(np.full(10, 5e-6))
        assert solution.settling_time is not None
        assert solution.settling_time < 1e-4

    def test_negative_definite_matrix_is_unstable(self):
        """Feedback through a negative-definite G must be flagged unstable."""
        n = 6
        g_neg_def = np.diag(np.full(n, 5e-5))
        # Unipolar circuit with positive G is stable; build instability with
        # a dominant negative plane instead.
        mapping_like_pos = np.full((n, n), 1e-6)
        circuit = InvCircuit(
            mapping_like_pos, g_neg_def, rng=np.random.default_rng(0)
        )
        solution = circuit.static_solve(np.full(n, 1e-6), noisy=False)
        assert not solution.stable


class TestNonIdealities:
    def test_offsets_shift_solution(self):
        _, mapping = _spd_planes(9)
        with_offsets = InvCircuit(
            mapping.g_pos, mapping.g_neg,
            params=OpAmpParams(offset_sigma=5e-3, noise_sigma=0.0),
            rng=np.random.default_rng(10),
        )
        without = InvCircuit(
            mapping.g_pos, mapping.g_neg,
            params=OpAmpParams(offset_sigma=0.0, noise_sigma=0.0),
            rng=np.random.default_rng(10),
        )
        i_in = np.full(10, 5e-6)
        a = with_offsets.static_solve(i_in, noisy=False).outputs
        b = without.static_solve(i_in, noisy=False).outputs
        assert np.linalg.norm(a - b) > 0.0

    def test_saturation_flagged_for_large_inputs(self):
        _, mapping = _spd_planes(11)
        circuit = InvCircuit(
            mapping.g_pos, mapping.g_neg,
            params=OpAmpParams(v_sat=0.5, offset_sigma=0.0, noise_sigma=0.0),
            rng=np.random.default_rng(0),
        )
        solution = circuit.static_solve(np.full(10, 5e-4), noisy=False)
        assert solution.saturated
        assert not solution.ok
