"""Unit tests for the transient (SPICE-substitute) engine."""

import numpy as np
import pytest

from repro.analog.dynamics import LinearFeedbackSystem, integrate_nonlinear


class TestLinearFeedbackSystem:
    def test_equilibrium_matches_linear_solve(self):
        rng = np.random.default_rng(0)
        m = -np.eye(4) * 10.0 + rng.standard_normal((4, 4))
        b = rng.standard_normal(4)
        system = LinearFeedbackSystem(m, b)
        np.testing.assert_allclose(system.equilibrium(), np.linalg.solve(m, -b))

    def test_stability_detection(self):
        stable = LinearFeedbackSystem(-np.eye(3), np.zeros(3))
        unstable = LinearFeedbackSystem(np.diag([-1.0, -1.0, 0.5]), np.zeros(3))
        assert stable.is_stable
        assert not unstable.is_stable

    def test_trajectory_converges_to_equilibrium(self):
        m = np.array([[-5.0, 1.0], [0.5, -4.0]])
        b = np.array([1.0, -2.0])
        system = LinearFeedbackSystem(m, b)
        result = system.trajectory(np.zeros(2), t_end=10.0)
        np.testing.assert_allclose(result.final, system.equilibrium(), rtol=1e-6)
        assert result.stable

    def test_trajectory_matches_analytic_scalar(self):
        """dx/dt = −x + 1 from 0: x(t) = 1 − e^{−t}."""
        system = LinearFeedbackSystem(np.array([[-1.0]]), np.array([1.0]))
        result = system.trajectory(np.zeros(1), t_end=3.0, num_points=50)
        expected = 1.0 - np.exp(-result.times)
        np.testing.assert_allclose(result.trajectory[:, 0], expected, atol=1e-9)

    def test_settling_time_detected(self):
        system = LinearFeedbackSystem(np.array([[-1.0]]), np.array([1.0]))
        result = system.trajectory(np.zeros(1), t_end=20.0, num_points=400)
        # 0.1% settling of a first-order system: ~6.9 time constants.
        assert result.settling_time == pytest.approx(6.9, abs=0.6)

    def test_time_constant(self):
        system = LinearFeedbackSystem(np.diag([-2.0, -10.0]), np.zeros(2))
        assert system.time_constant() == pytest.approx(0.5)

    def test_unstable_trajectory_flagged(self):
        system = LinearFeedbackSystem(np.array([[0.5]]), np.array([0.0]))
        result = system.trajectory(np.ones(1), t_end=5.0)
        assert not result.stable
        assert result.settling_time is None

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LinearFeedbackSystem(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ValueError):
            LinearFeedbackSystem(np.zeros((2, 2)), np.zeros(3))

    def test_oscillatory_mode_handled(self):
        """Complex eigenvalues (ringing) still settle when damped."""
        m = np.array([[-1.0, -5.0], [5.0, -1.0]])
        system = LinearFeedbackSystem(m, np.array([1.0, 0.0]))
        result = system.trajectory(np.zeros(2), t_end=15.0, num_points=600)
        assert result.stable
        np.testing.assert_allclose(result.final, system.equilibrium(), atol=1e-5)


class TestNonlinearIntegration:
    def test_saturating_growth_settles(self):
        """dx/dt = −x + tanh(2x) + 0.01 grows to a bounded fixed point."""

        def rhs(_t, x):
            return -x + np.tanh(2.0 * x) + 0.01

        result = integrate_nonlinear(rhs, np.zeros(1), t_end=50.0)
        assert result.stable
        # Fixed point of x = tanh(2x) + 0.01 near 0.965.
        assert result.final[0] == pytest.approx(0.966, abs=0.02)

    def test_matches_linear_engine_in_linear_regime(self):
        m = np.array([[-3.0, 0.2], [0.1, -2.0]])
        b = np.array([0.5, -0.3])
        linear = LinearFeedbackSystem(m, b)
        nonlinear = integrate_nonlinear(
            lambda _t, x: m @ x + b, np.zeros(2), t_end=8.0, rtol=1e-9
        )
        np.testing.assert_allclose(nonlinear.final, linear.equilibrium(), rtol=1e-5)
