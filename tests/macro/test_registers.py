"""Register array: encode/decode roundtrips and ladder codes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analog.topologies import AMCMode
from repro.macro.registers import (
    G_LAMBDA_STEP,
    MacroConfig,
    MacroRole,
    RegisterArray,
    decode,
    encode,
    g_f_code_for,
    g_lambda_code_for,
)


class TestEncodeDecode:
    def test_roundtrip_example(self):
        config = MacroConfig(
            mode=AMCMode.PINV, rows=128, cols=6, row_offset=0, col_offset=12,
            g_f_code=10, g_lambda_code=321, role=MacroRole.PARTNER_T,
        )
        assert decode(encode(config)) == config

    @given(
        mode=st.sampled_from(list(AMCMode)),
        rows=st.integers(min_value=1, max_value=256),
        cols=st.integers(min_value=1, max_value=256),
        row_offset=st.integers(min_value=0, max_value=255),
        col_offset=st.integers(min_value=0, max_value=255),
        g_f_code=st.integers(min_value=0, max_value=255),
        g_lambda_code=st.integers(min_value=0, max_value=65535),
        role=st.sampled_from(list(MacroRole)),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, **kwargs):
        config = MacroConfig(**kwargs)
        assert decode(encode(config)) == config

    def test_word_fits_64_bits(self):
        config = MacroConfig(
            mode=AMCMode.EGV, rows=256, cols=256, row_offset=255, col_offset=255,
            g_f_code=255, g_lambda_code=65535, role=MacroRole.PARTNER_T_NEG,
        )
        assert 0 <= encode(config) < (1 << 64)

    def test_decode_rejects_bad_word(self):
        with pytest.raises(ValueError):
            decode(-1)
        with pytest.raises(ValueError):
            decode(1 << 64)


class TestLadders:
    def test_g_f_ladder(self):
        config = MacroConfig(mode=AMCMode.MVM, rows=1, cols=1, g_f_code=39)
        assert config.g_f == pytest.approx(1e-3)

    def test_g_f_code_for_roundtrip(self):
        for g_f in (2.5e-5, 1e-3, 6.4e-3):
            code = g_f_code_for(g_f)
            config = MacroConfig(mode=AMCMode.MVM, rows=1, cols=1, g_f_code=code)
            assert config.g_f == pytest.approx(g_f, rel=0.5)

    def test_g_f_code_clamps(self):
        assert g_f_code_for(1.0) == 255
        assert g_f_code_for(1e-9) == 0

    def test_g_lambda_ladder_resolution(self):
        """λ quantization must cost far less than 4-bit matrix quantization."""
        target = 123.4e-6
        code = g_lambda_code_for(target)
        assert abs(code * G_LAMBDA_STEP - target) <= G_LAMBDA_STEP / 2

    def test_g_lambda_rejects_negative(self):
        with pytest.raises(ValueError):
            g_lambda_code_for(-1e-6)


class TestValidation:
    def test_rows_out_of_range(self):
        with pytest.raises(ValueError):
            MacroConfig(mode=AMCMode.MVM, rows=0, cols=1)
        with pytest.raises(ValueError):
            MacroConfig(mode=AMCMode.MVM, rows=257, cols=1)

    def test_register_array_lifecycle(self):
        registers = RegisterArray()
        assert not registers.configured
        with pytest.raises(RuntimeError):
            registers.read()
        config = MacroConfig(mode=AMCMode.INV, rows=8, cols=8)
        registers.write(config)
        assert registers.configured
        assert registers.read() == config

    def test_write_word_validates(self):
        registers = RegisterArray()
        config = MacroConfig(mode=AMCMode.MVM, rows=16, cols=16)
        word = encode(config)
        assert registers.write_word(word) == config
