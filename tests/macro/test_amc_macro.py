"""AMC macro integration tests: configure → program → compute, all modes."""

import numpy as np
import pytest

from repro.analog.egv import estimate_dominant_eigenvalue
from repro.analog.topologies import AMCMode
from repro.arrays.mapping import DifferentialMapping
from repro.macro.amc_macro import AMCMacro, PlaneLayout
from repro.workloads.matrices import wishart


def _macro(seed=0, rows=32, cols=32) -> AMCMacro:
    return AMCMacro(macro_id=seed % 15, rows=rows, cols=cols, rng=np.random.default_rng(seed))


def _spd(seed=0, n=12):
    return wishart(n, rng=np.random.default_rng(seed)) + 0.3 * np.eye(n)


class TestConfiguration:
    def test_configure_writes_registers(self):
        macro = _macro()
        config = macro.configure(AMCMode.MVM, 8, 8, g_f=2e-3)
        assert macro.config == config
        assert config.g_f == pytest.approx(2e-3, rel=0.3)

    def test_paired_columns_doubles_physical_width(self):
        macro = _macro()
        config = macro.configure(AMCMode.MVM, 8, 8, layout=PlaneLayout.PAIRED_COLUMNS)
        assert config.cols == 16

    def test_mode_mismatch_raises(self):
        macro = _macro()
        macro.configure(AMCMode.MVM, 8, 8)
        with pytest.raises(RuntimeError, match="configured for mvm"):
            macro.compute_inv(np.zeros(8))

    def test_set_g_f_only_touches_ladder(self):
        macro = _macro()
        before = macro.configure(AMCMode.MVM, 8, 8, g_f=1e-3)
        actual = macro.set_g_f(4e-3)
        after = macro.config
        assert after.g_f == pytest.approx(actual)
        assert (after.rows, after.cols, after.mode) == (before.rows, before.cols, before.mode)

    def test_egv_requires_g_lambda(self):
        macro = _macro()
        macro.configure(AMCMode.EGV, 8, 8, layout=PlaneLayout.PAIRED_COLUMNS)
        macro.program_mapping(DifferentialMapping.from_matrix(np.eye(8)))
        with pytest.raises(RuntimeError, match="g_lambda"):
            macro.compute_egv()


class TestMVM:
    def test_paired_columns_mvm(self):
        matrix = np.random.default_rng(1).uniform(-1, 1, size=(12, 12))
        mapping = DifferentialMapping.from_matrix(matrix)
        macro = _macro(2)
        macro.configure(AMCMode.MVM, 12, 12, layout=PlaneLayout.PAIRED_COLUMNS, g_f=2e-3)
        macro.program_mapping(mapping)
        x = np.random.default_rng(3).uniform(-0.3, 0.3, 12)
        result = macro.compute_mvm(x)
        decoded = -result.values * macro.config.g_f * mapping.value_scale
        reference = matrix @ x
        assert np.linalg.norm(decoded - reference) / np.linalg.norm(reference) < 0.35

    def test_paired_arrays_mvm(self):
        matrix = np.random.default_rng(4).uniform(-1, 1, size=(16, 16))
        mapping = DifferentialMapping.from_matrix(matrix)
        primary, partner = _macro(5), _macro(6)
        primary.configure(AMCMode.MVM, 16, 16, layout=PlaneLayout.PAIRED_ARRAYS, g_f=2e-3)
        partner.configure(AMCMode.MVM, 16, 16)
        primary.program_mapping(mapping, partner=partner)
        x = np.random.default_rng(7).uniform(-0.3, 0.3, 16)
        result = primary.compute_mvm(x, partner=partner)
        decoded = -result.values * primary.config.g_f * mapping.value_scale
        reference = matrix @ x
        assert np.linalg.norm(decoded - reference) / np.linalg.norm(reference) < 0.35

    def test_paired_arrays_requires_partner(self):
        macro = _macro(8)
        macro.configure(AMCMode.MVM, 8, 8, layout=PlaneLayout.PAIRED_ARRAYS)
        mapping = DifferentialMapping.from_matrix(np.eye(8))
        with pytest.raises(ValueError, match="partner"):
            macro.program_mapping(mapping)

    def test_solve_count_increments(self):
        macro = _macro(9)
        macro.configure(AMCMode.MVM, 8, 8, layout=PlaneLayout.PAIRED_COLUMNS)
        macro.program_mapping(DifferentialMapping.from_matrix(np.eye(8)))
        macro.compute_mvm(np.zeros(8))
        macro.compute_mvm(np.zeros(8))
        assert macro.solve_count == 2


class TestINV:
    def test_paired_columns_inv(self):
        matrix = _spd(10)
        mapping = DifferentialMapping.from_matrix(matrix)
        macro = _macro(11)
        # g_f sized manually here; GramcSolver normally auto-ranges this.
        macro.configure(AMCMode.INV, 12, 12, layout=PlaneLayout.PAIRED_COLUMNS, g_f=5e-5)
        macro.program_mapping(mapping)
        b = np.random.default_rng(12).uniform(-0.2, 0.2, 12)
        result = macro.compute_inv(b)
        assert result.ok
        i_in = macro.config.g_f * b
        reference = -np.linalg.solve(matrix / mapping.value_scale, i_in)
        error = np.linalg.norm(result.values - reference) / np.linalg.norm(reference)
        assert error < 0.4


class TestPINV:
    def test_two_macro_least_squares(self):
        matrix = np.random.default_rng(13).standard_normal((24, 6))
        map_a = DifferentialMapping.from_matrix(matrix)
        map_at = DifferentialMapping.from_matrix(matrix.T)
        # The transpose tile (6×24, paired columns) needs 48 physical columns.
        primary, partner_t = _macro(14, rows=32, cols=64), _macro(15, rows=32, cols=64)
        primary.configure(AMCMode.PINV, 24, 6, layout=PlaneLayout.PAIRED_COLUMNS, g_f=1e-4)
        partner_t.configure(AMCMode.PINV, 6, 24, layout=PlaneLayout.PAIRED_COLUMNS, g_f=1e-4)
        primary.program_mapping(map_a)
        partner_t.program_mapping(map_at)
        b = np.random.default_rng(16).uniform(-0.5, 0.5, 24)
        result = primary.compute_pinv(b, partner_t=partner_t)
        assert result.ok
        i_in = primary.config.g_f * b
        reference = -np.linalg.pinv(matrix / map_a.value_scale) @ i_in
        error = np.linalg.norm(result.values - reference) / np.linalg.norm(reference)
        assert error < 0.3


class TestEGV:
    def test_gram_eigenvector(self):
        data = np.random.default_rng(17).standard_normal((12, 4))
        matrix = data @ data.T / 4
        mapping = DifferentialMapping.from_matrix(matrix)
        lam = estimate_dominant_eigenvalue(mapping.decode()) * 0.93
        macro = _macro(18)
        macro.configure(
            AMCMode.EGV, 12, 12, layout=PlaneLayout.PAIRED_COLUMNS,
            g_lambda=lam / mapping.value_scale,
        )
        macro.program_mapping(mapping)
        result = macro.compute_egv()
        eigenvalues, eigenvectors = np.linalg.eigh(matrix)
        reference = eigenvectors[:, -1]
        assert abs(result.values @ reference) > 0.95
