"""Switch-fabric tests: connection lists and short detection."""

import pytest

from repro.analog.topologies import AMCMode
from repro.macro.switches import (
    Connection,
    Terminal,
    build_connections,
    validate_connections,
)


class TestBuildConnections:
    @pytest.mark.parametrize("mode", list(AMCMode))
    def test_all_modes_validate(self, mode):
        connections = build_connections(mode, rows=8, cols=8, differential=True)
        validate_connections(connections)  # must not raise

    def test_mvm_drives_bls_from_dac(self):
        connections = build_connections(AMCMode.MVM, 4, 4, differential=False)
        dac_lines = [c.line for c in connections if c.terminal is Terminal.DAC]
        assert dac_lines == [f"BL[{j}]" for j in range(4)]

    def test_inv_feeds_back_opa_outputs(self):
        connections = build_connections(AMCMode.INV, 4, 4, differential=False)
        feedback = [c for c in connections if c.terminal is Terminal.OPA_OUT]
        assert {c.line for c in feedback} == {f"BL[{j}]" for j in range(4)}

    def test_differential_adds_inverter_lines(self):
        plain = build_connections(AMCMode.MVM, 4, 4, differential=False)
        diff = build_connections(AMCMode.MVM, 4, 4, differential=True)
        inverter_lines = [c for c in diff if c.terminal is Terminal.INVERTER_OUT]
        assert len(diff) == len(plain) + 4
        assert len(inverter_lines) == 4

    def test_every_row_has_virtual_ground(self):
        for mode in AMCMode:
            connections = build_connections(mode, 6, 3, differential=False)
            virtual_grounds = {
                c.line for c in connections if c.terminal is Terminal.OPA_VIN
            }
            assert virtual_grounds == {f"SL[{i}]" for i in range(6)}


class TestValidator:
    def test_detects_short(self):
        shorted = [
            Connection("BL[0]", Terminal.OPA_OUT, 0),
            Connection("BL[0]", Terminal.INVERTER_OUT, 1),
        ]
        with pytest.raises(ValueError, match="short"):
            validate_connections(shorted)

    def test_sensing_terminals_may_share(self):
        shared = [
            Connection("SL[0]", Terminal.OPA_VIN, 0),
            Connection("SL[0]", Terminal.DAC, 0),  # current injection
            Connection("SL[0]", Terminal.ADC, 0),
        ]
        validate_connections(shared)  # must not raise
