"""FaultPlan: the schedule format, its parsers, and its invariants."""

from __future__ import annotations

import json

import pytest

from repro.faults import (
    DriftOnset,
    FaultPlan,
    LineOpen,
    MacroDeath,
    StuckCells,
)


def test_events_sorted_and_frozen():
    plan = FaultPlan(events=[MacroDeath(tick=3, macro=1), DriftOnset(tick=1, macro=0)])
    assert isinstance(plan.events, tuple)
    with pytest.raises(Exception):
        plan.seed = 99  # frozen dataclass


def test_events_must_fire_after_tick_zero():
    with pytest.raises(ValueError, match="ticks >= 1"):
        FaultPlan(events=(DriftOnset(tick=0, macro=0),))


def test_describe_is_json_ready():
    plan = FaultPlan.canonical()
    payload = json.dumps(plan.describe())
    round_tripped = json.loads(payload)
    assert round_tripped["seed"] == plan.seed
    assert len(round_tripped["events"]) == len(plan.events)
    kinds = {entry["kind"] for entry in round_tripped["events"]}
    assert kinds == {"drift", "stuck_cells", "line_open", "macro_death"}


def test_from_spec_canonical():
    assert FaultPlan.from_spec("canonical") == FaultPlan.canonical()


def test_from_spec_json_roundtrip():
    spec = json.dumps(
        {
            "seed": 5,
            "seconds_per_tick": 120.0,
            "events": [
                {"kind": "drift", "tick": 1, "macro": 3, "time_scale": 2.0},
                {"kind": "stuck_cells", "tick": 2, "macro": 0, "fraction": 0.02},
                {"kind": "line_open", "tick": 3, "macro": 1, "axis": 1, "index": 7},
                {"kind": "macro_death", "tick": 4, "macro": 2},
            ],
        }
    )
    plan = FaultPlan.from_spec(spec)
    assert plan.seed == 5
    assert plan.events == (
        DriftOnset(tick=1, macro=3, time_scale=2.0),
        StuckCells(tick=2, macro=0, fraction=0.02),
        LineOpen(tick=3, macro=1, axis=1, index=7),
        MacroDeath(tick=4, macro=2),
    )


def test_from_spec_rejects_garbage():
    with pytest.raises(ValueError):
        FaultPlan.from_spec("")
    with pytest.raises(ValueError):
        FaultPlan.from_spec("chaos-monkey")
    with pytest.raises(ValueError, match="unknown fault event kind"):
        FaultPlan.from_spec(json.dumps({"events": [{"kind": "gamma_ray", "tick": 1, "macro": 0}]}))
    with pytest.raises(ValueError, match="unknown FaultPlan fields"):
        FaultPlan.from_spec(json.dumps({"verbosity": 11}))


def test_canonical_matches_acceptance_scenario():
    """The chaos suite's contract: >=1% stuck cells, drift on two tiles,
    one whole-macro death mid-workload."""
    plan = FaultPlan.canonical()
    stuck = [e for e in plan.events if isinstance(e, StuckCells)]
    assert stuck and all(e.fraction >= 0.01 for e in stuck)
    assert sum(isinstance(e, DriftOnset) for e in plan.events) == 2
    assert sum(isinstance(e, MacroDeath) for e in plan.events) == 1
    assert plan.canary_interval > 0
