"""HealthMonitor: earned detection signals and the healing ladder."""

from __future__ import annotations

import numpy as np

from repro.analog.topologies import AMCMode
from repro.core.pool import MacroPool, PoolConfig
from repro.core.solver import GramcSolver
from repro.faults import DriftOnset, FaultInjector, FaultPlan, StuckCells
from repro.obs.registry import MetricsRegistry


def make_stack(plan=None, num_macros=4, n=16, registry=None):
    pool = MacroPool(
        PoolConfig(num_macros=num_macros, rows=n, cols=n),
        rng=np.random.default_rng(5),
    )
    injector = FaultInjector(plan or FaultPlan(), pool, registry=registry)
    solver = GramcSolver(pool=pool, rng=np.random.default_rng(6))
    return pool, injector, solver


class _Result:
    """Duck-typed SolveResult carrying only the health-relevant fields."""

    def __init__(self, macro_ids=(0,), **fields):
        self.macro_ids = macro_ids
        self.saturated = False
        self.stable = True
        self.attempts = 1
        for key, value in fields.items():
            setattr(self, key, value)


def test_scores_start_healthy_and_clamp():
    _, injector, _ = make_stack()
    monitor = injector.monitor
    assert monitor.score(0) == 1.0
    monitor.penalize([0], 5.0)
    assert monitor.score(0) == 0.0
    monitor.reward([0], 5.0)
    assert monitor.score(0) == 1.0


def test_detection_is_earned_not_oracled():
    """Silent degradations (drift, stuck cells) leave scores untouched at
    injection time — only the macro-death peripheral check is free."""
    plan = FaultPlan(
        events=(
            DriftOnset(tick=1, macro=0),
            StuckCells(tick=1, macro=1, fraction=0.05),
        )
    )
    _, injector, _ = make_stack(plan)
    injector.advance()
    assert injector.monitor.score(0) == 1.0
    assert injector.monitor.score(1) == 1.0


def test_observe_solve_penalizes_refinement_regressions():
    _, injector, _ = make_stack()
    monitor = injector.monitor
    monitor.observe_solve(
        None, _Result(refine_residual_trace=[1e-6, 1e-3])  # residual grew
    )
    assert monitor.score(0) < 1.0
    before = monitor.score(0)
    monitor.observe_solve(
        None, _Result(per_column_converged=np.array([True, False]))
    )
    assert monitor.score(0) < before


def test_observe_solve_rewards_clean_solves():
    _, injector, _ = make_stack()
    monitor = injector.monitor
    monitor.penalize([0], 0.3)
    degraded = monitor.score(0)
    monitor.observe_solve(None, _Result())
    assert monitor.score(0) > degraded


def test_ranging_retries_are_a_signal():
    _, injector, _ = make_stack()
    monitor = injector.monitor
    monitor.observe_solve(None, _Result(attempts=5))
    assert monitor.score(0) < 1.0


def test_canaries_catch_silent_drift_on_idle_operators():
    """No tenant queries the operator; the canary sweep still notices the
    conductances walked away."""
    plan = FaultPlan(
        seconds_per_tick=36000.0,
        canary_interval=1,
        events=(DriftOnset(tick=1, macro=0),),
    )
    pool, injector, solver = make_stack(plan)
    rng = np.random.default_rng(7)
    a = np.eye(8) * 4 + rng.normal(0, 0.2, (8, 8))
    op = solver.compile(a, AMCMode.INV)
    macro_ids = tuple(op.resident_macro_ids())
    for _ in range(6):
        injector.advance()
    assert injector.monitor.canary_runs >= 1
    assert injector.monitor.canary_failures >= 1
    assert min(injector.monitor.score(m) for m in macro_ids) < 1.0


def test_reverify_heals_drift_in_place():
    """Rung 2: targeted re-verify rewrites only the drifted cells and the
    operator solves accurately again — no quarantine, no migration."""
    plan = FaultPlan(
        seconds_per_tick=36000.0, events=(DriftOnset(tick=1, macro=0),)
    )
    pool, injector, solver = make_stack(plan)
    rng = np.random.default_rng(8)
    a = np.eye(8) * 4 + rng.normal(0, 0.2, (8, 8))
    op = solver.compile(a, AMCMode.INV)
    for _ in range(5):
        injector.advance()
    report = injector.monitor.heal_operator(op)
    assert report["cells_reverified"] > 0
    assert not report["quarantined_macros"]
    b = rng.normal(0, 1, 8)
    result = op.solve(b, rtol=1e-8)
    assert bool(np.all(result.per_column_converged))


def test_heal_quarantines_hopeless_macros_and_operator_migrates():
    """Rung 4: a macro too stuck to re-verify or reprogram is quarantined;
    the operator transparently re-homes onto healthy macros on next use."""
    plan = FaultPlan(events=(StuckCells(tick=1, macro=0, fraction=0.4),))
    pool, injector, solver = make_stack(plan)
    rng = np.random.default_rng(9)
    a = np.eye(8) * 4 + rng.normal(0, 0.2, (8, 8))
    op = solver.compile(a, AMCMode.INV)
    first_home = tuple(op.resident_macro_ids())
    injector.advance()  # 40% of macro 0's cells latch
    report = injector.monitor.heal_operator(op)
    assert 0 in report["quarantined_macros"]
    assert 0 in pool.quarantined
    result = op.solve(rng.normal(0, 1, 8), rtol=1e-6)
    second_home = tuple(op.resident_macro_ids())
    assert 0 not in second_home
    assert second_home != first_home
    assert bool(np.all(result.per_column_converged))


def test_health_scores_export_to_registry():
    registry = MetricsRegistry()
    _, injector, _ = make_stack(registry=registry)
    injector.monitor.penalize([2], 0.25)
    gauge = registry.gauge(
        "gramc_macro_health",
        "Per-macro health score (1 healthy, 0 dead)",
        ("macro",),
    )
    assert gauge.labels("2").value == 0.75


def test_snapshot_carries_the_evidence_trail():
    plan = FaultPlan(events=(StuckCells(tick=1, macro=0, fraction=0.05),))
    _, injector, _ = make_stack(plan)
    injector.advance()
    injector.monitor.penalize([0], 0.5)
    snap = injector.monitor.snapshot()
    assert snap["clock"] == 1
    assert snap["events"][0]["kind"] == "stuck_cells"
    assert snap["scores"][0] == 0.5
    assert snap["quarantined"] == []
