"""FaultInjector: the logical clock, event firing, drift, and supervision."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analog.topologies import AMCMode
from repro.core.errors import DegradedChipError
from repro.core.pool import MacroPool, PoolConfig
from repro.core.solver import GramcSolver
from repro.faults import (
    DriftOnset,
    FaultInjector,
    FaultPlan,
    LineOpen,
    MacroDeath,
    StuckCells,
)


def make_pool(num_macros: int = 4, n: int = 16) -> MacroPool:
    return MacroPool(
        PoolConfig(num_macros=num_macros, rows=n, cols=n),
        rng=np.random.default_rng(3),
    )


def test_clock_advances_once_per_outer_operation():
    injector = FaultInjector(FaultPlan(), make_pool())
    assert injector.clock == 0 and not injector.busy
    with injector.operation():
        assert injector.busy
        with injector.operation():  # nested: a tiled block step / canary
            assert injector.clock == 1
        assert injector.clock == 1
    with injector.operation():
        pass
    assert injector.clock == 2 and not injector.busy


def test_events_fire_on_schedule_and_are_logged():
    pool = make_pool()
    plan = FaultPlan(
        seed=11,
        events=(
            StuckCells(tick=1, macro=0, fraction=0.05),
            LineOpen(tick=2, macro=1, axis=1, index=3),
        ),
    )
    injector = FaultInjector(plan, pool)
    injector.advance()
    assert [e["kind"] for e in injector.log] == ["stuck_cells"]
    assert pool.macros[0].array.fault_fraction() > 0.0
    injector.advance()
    assert [e["kind"] for e in injector.log] == ["stuck_cells", "line_open"]
    # A whole column of macro 1 reads open.
    faults = pool.macros[1].array._faults
    assert np.all(faults[:, 3] == -1)


def test_stuck_cells_are_deterministic_under_the_plan_seed():
    def fault_mask(seed):
        pool = make_pool()
        injector = FaultInjector(
            FaultPlan(seed=seed, events=(StuckCells(tick=1, macro=0, fraction=0.1),)),
            pool,
        )
        injector.advance()
        return pool.macros[0].array._faults.copy()

    assert np.array_equal(fault_mask(42), fault_mask(42))
    assert not np.array_equal(fault_mask(42), fault_mask(43))


def test_drift_moves_stored_conductances_and_bumps_version():
    pool = make_pool()
    array = pool.macros[0].array
    array.program_targets(np.full(array.shape, 50e-6))
    before = array.stored_conductances().copy()
    version_before = array.version
    plan = FaultPlan(
        seconds_per_tick=3600.0, events=(DriftOnset(tick=1, macro=0),)
    )
    injector = FaultInjector(plan, pool)
    injector.advance(3)
    after = array.stored_conductances()
    assert array.version > version_before  # resident circuits invalidate
    assert not np.allclose(before, after)


def test_reprogram_rebaselines_drift():
    """A write-verify pass refreshes the filaments: drift restarts from
    the fresh conductances instead of compounding the stale baseline."""
    pool = make_pool()
    array = pool.macros[0].array
    targets = np.full(array.shape, 50e-6)
    array.program_targets(targets)
    plan = FaultPlan(
        seconds_per_tick=36000.0, events=(DriftOnset(tick=1, macro=0),)
    )
    injector = FaultInjector(plan, pool)
    injector.advance(4)
    drifted = array.stored_conductances().copy()
    array.program_targets(targets)  # heal rung 3: full reprogram
    injector.advance()  # re-baselines; elapsed=0 for the fresh write
    fresh = array.stored_conductances()
    assert np.abs(fresh - targets).mean() < np.abs(drifted - targets).mean()


def test_macro_death_quarantines_and_migrates():
    pool = make_pool(num_macros=4)
    plan = FaultPlan(events=(MacroDeath(tick=1, macro=0),))
    injector = FaultInjector(plan, pool)
    evicted = []
    pool.acquire("victim", 1, on_evict=evicted.append)
    assert pool.macros[0] in [pool.macros[i] for i in pool._owners["victim"]]
    injector.advance()
    assert 0 in pool.quarantined
    assert evicted == ["victim"]  # handle marked stale -> re-homes on next use
    assert injector.monitor.score(0) == 0.0
    # The dead macro never returns through acquire.
    grants = pool.acquire("next", 3)
    assert pool.macros[0] not in grants


def test_supervised_solve_heals_and_raises_structured_error():
    pool = make_pool()
    injector = FaultInjector(FaultPlan(), pool)

    class FakeOperator:
        key = "fake-operator"
        mode = AMCMode.INV
        resident = False  # heal ladder counts it as a migration

    attempts = []

    def failing_attempt():
        attempts.append(1)

        class R:
            per_column_converged = np.array([False])
            macro_ids = ()

        return R()

    with pytest.raises(DegradedChipError) as excinfo:
        injector.supervised_solve(FakeOperator(), failing_attempt, rtol=1e-8)
    assert len(attempts) == 2  # exactly one retry after healing
    error = excinfo.value
    assert error.health is not None and "scores" in error.health
    assert error.healing is not None and error.healing["migrated_tiles"] >= 1


def test_chip_level_wiring_reaches_operator_solves():
    """GramcChip(faults=...) ticks the clock once per top-level solve —
    including every block step of a tiled solve under one tick."""
    from repro.system.gramc import GramcChip

    rng = np.random.default_rng(0)
    a = np.eye(8) * 4 + rng.normal(0, 0.2, (8, 8))
    chip = GramcChip(
        PoolConfig(num_macros=4, rows=16, cols=16), faults=FaultPlan()
    )
    op = chip.compile(a, AMCMode.INV)
    for expected in (1, 2, 3):
        op.solve(rng.normal(0, 1, 8))
        assert chip.clock == expected


def test_env_variable_wires_a_plan(monkeypatch):
    from repro.system.gramc import GramcChip

    monkeypatch.setenv("REPRO_FAULTS", "canonical")
    chip = GramcChip(PoolConfig(num_macros=4, rows=16, cols=16))
    assert chip.faults is not None
    assert chip.faults.plan == FaultPlan.canonical()
    monkeypatch.delenv("REPRO_FAULTS")
    assert GramcChip(PoolConfig(num_macros=4, rows=16, cols=16)).faults is None


def test_solver_binding_enables_canaries():
    pool = make_pool()
    injector = FaultInjector(FaultPlan(canary_interval=1), pool)
    solver = GramcSolver(pool=pool, rng=np.random.default_rng(1))
    assert solver.health_monitor is injector.monitor
    rng = np.random.default_rng(2)
    a = np.eye(8) * 4 + rng.normal(0, 0.2, (8, 8))
    op = solver.compile(a, AMCMode.INV)
    op.solve(rng.normal(0, 1, 8))
    # The canary sweep ran on the resident operator during the tick.
    assert injector.monitor.canary_runs >= 1
