"""Fault-free path is bitwise unchanged: ``faults=None`` twins.

The whole fault package must be invisible when no plan is configured —
the supervised operator wrappers dispatch straight to their
implementations, no injector or monitor is ever constructed, and solve
and serve answers are bitwise identical to a pre-faults build.  These
twin tests pin that contract."""

from __future__ import annotations

import asyncio

import numpy as np

from repro.analog.opamp import OpAmpParams
from repro.analog.topologies import AMCMode
from repro.converters.adc import ADCParams
from repro.converters.dac import DACParams
from repro.core.pool import PoolConfig
from repro.devices.constants import DeviceStack, VariabilityParams
from repro.faults import DriftOnset, FaultPlan
from repro.system.gramc import GramcChip


def noiseless_config(num_macros: int = 4, n: int = 16) -> PoolConfig:
    return PoolConfig(
        num_macros=num_macros,
        rows=n,
        cols=n,
        stack=DeviceStack(variability=VariabilityParams(read_noise_sigma=0.0)),
        opamp=OpAmpParams(noise_sigma=0.0),
        dac=DACParams(noise_sigma=0.0),
        adc=ADCParams(noise_sigma=0.0),
    )


def make_chip(faults=None) -> GramcChip:
    return GramcChip(
        noiseless_config(), rng=np.random.default_rng(2026), faults=faults
    )


def _problem(n=12, k=3):
    rng = np.random.default_rng(44)
    a = np.eye(n) * 3.0 + rng.normal(0, 0.1, (n, n))
    b = rng.normal(0, 1, (n, k))
    return a, b


def test_solve_results_bitwise_identical_without_faults():
    a, b = _problem()
    chips = [make_chip(), make_chip()]
    results = []
    for chip in chips:
        op = chip.compile(a, AMCMode.INV)
        results.append(op.solve(b, rtol=1e-9))
    assert chips[0].faults is None and chips[0].clock == 0
    assert np.array_equal(results[0].value, results[1].value)
    assert np.array_equal(
        results[0].per_column_residual, results[1].per_column_residual
    )
    assert results[0].worst_columns == results[1].worst_columns


def test_mvm_and_tiled_bitwise_identical_without_faults():
    rng = np.random.default_rng(45)
    n = 24  # > 16 columns: compiles to a TiledOperator on 16-wide arrays
    a = np.eye(n) * 4.0 + rng.normal(0, 0.1, (n, n))
    b = rng.normal(0, 1, n)
    values = []
    for _ in range(2):
        chip = GramcChip(
            noiseless_config(num_macros=12), rng=np.random.default_rng(9)
        )
        op = chip.compile(a, AMCMode.INV)
        assert hasattr(op, "block_slices")  # really tiled
        values.append(op.solve(b, rtol=1e-8).value)
    assert np.array_equal(values[0], values[1])


def test_faulted_chip_differs_but_is_self_consistent():
    """Same plan + same workload ⇒ bit-identical degradation; the
    fault-free twin diverges once drift lands."""
    a, b = _problem()
    plan = FaultPlan(
        seconds_per_tick=36000.0, events=(DriftOnset(tick=1, macro=0),)
    )
    faulted = []
    for _ in range(2):
        chip = make_chip(faults=plan)
        op = chip.compile(a, AMCMode.INV)
        for _ in range(3):
            result = op.solve(b)
        faulted.append(result.value)
    assert np.array_equal(faulted[0], faulted[1])

    clean_chip = make_chip()
    op = clean_chip.compile(a, AMCMode.INV)
    for _ in range(3):
        clean = op.solve(b)
    assert not np.array_equal(faulted[0], clean.value)


def test_serve_results_bitwise_identical_without_faults():
    a, b = _problem()

    async def run(chip):
        async with chip.serve() as service:
            service.register_tenant("t")
            op = await service.compile("t", a, AMCMode.INV)
            result = await service.solve("t", op, b, rtol=1e-8)
            return result.value

    values = [asyncio.run(run(make_chip())) for _ in range(2)]
    assert np.array_equal(values[0], values[1])
