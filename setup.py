"""Legacy setup shim: this offline environment lacks the `wheel` package,
so `pip install -e .` falls back to the setuptools develop path via this file."""
from setuptools import setup

setup()
