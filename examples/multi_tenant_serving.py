"""Multi-tenant serving: many async clients sharing one GRAMC chip.

Four tenants submit solve/MVM requests concurrently against a single
chip through :class:`repro.serve.SolveService`.  The service admits each
request against per-tenant quotas, coalesces same-operator columns that
arrive within one dispatch window into a single batched engine call,
scatters the per-column results back to each caller's future, and sheds
overload with structured backpressure errors instead of queue collapse.

The lifecycle every request walks:  admit → coalesce → dispatch → scatter.

Run:  python examples/multi_tenant_serving.py
"""

import asyncio

import numpy as np

from repro import AMCMode
from repro.analysis.reporting import banner, format_table
from repro.serve import ServeConfig, ServiceOverloaded, TenantQuota
from repro.system import GramcChip
from repro.workloads.matrices import wishart


async def main() -> None:
    rng = np.random.default_rng(7)
    chip = GramcChip(rng=np.random.default_rng(11))
    service = chip.serve(ServeConfig(window_s=0.005, max_pending=64))

    # Tenants get quotas: pending-request bounds, a soft macro share for
    # fair-share preemption, and a scheduling priority.
    service.register_tenant("ranker", TenantQuota(max_pending=16, priority=1))
    service.register_tenant("regression", TenantQuota(max_pending=16))
    service.register_tenant("telemetry", TenantQuota(max_pending=8))
    service.register_tenant("spammer", TenantQuota(max_pending=2))

    async with service:
        # Each tenant compiles (or shares) operator handles; the serve
        # layer accepts handles only, so residency stays visible.
        n = 24
        a = wishart(n, rng=rng) + 0.6 * np.eye(n)
        c = rng.uniform(-1.0, 1.0, (n, n))
        inv_op = await service.compile("ranker", a, AMCMode.INV)
        mvm_op = await service.compile("telemetry", c, AMCMode.MVM)

        # --- one dispatch window, three tenants, one engine call per
        # operator: concurrent columns against `inv_op` coalesce.
        b_cols = rng.normal(0.0, 1.0, (n, 3))
        b_cols /= np.max(np.abs(b_cols), axis=0)
        r1, r2, r3, m1 = await asyncio.gather(
            service.solve("ranker", inv_op, b_cols[:, 0]),
            service.solve("regression", inv_op, b_cols[:, 1]),
            service.solve("ranker", inv_op, b_cols[:, 2]),
            service.mvm("telemetry", mvm_op, np.ones(n) / n),
        )

        rows = [
            ["ranker solve #1", r1.relative_error, r1.ok],
            ["regression solve", r2.relative_error, r2.ok],
            ["ranker solve #2", r3.relative_error, r3.ok],
            ["telemetry mvm", m1.relative_error, m1.ok],
        ]

        # --- backpressure: the spammer's third in-flight request is shed
        # with a structured error naming who holds the chip.
        shed = 0
        outcomes = await asyncio.gather(
            *[
                service.solve("spammer", inv_op, b_cols[:, 0])
                for _ in range(6)
            ],
            return_exceptions=True,
        )
        for outcome in outcomes:
            if isinstance(outcome, ServiceOverloaded):
                shed += 1
                assert outcome.owner_stats is not None
                assert "total" in outcome.queue_depths

        summary = service.snapshot()["service"]

    print(banner("GRAMC multi-tenant serving — admit, coalesce, scatter"))
    print(format_table(["request", "error vs numpy", "electrically ok"], rows))
    print(
        f"\nengine calls: {summary['engine_calls']}  "
        f"coalesced columns: {summary['coalesced_columns']}  "
        f"coalescing factor: {summary['coalescing_factor']:.1f}x"
    )
    print(f"spammer burst of 6 -> {shed} shed with structured backpressure")
    for tenant, counters in sorted(summary["tenants"].items()):
        print(
            f"  {tenant:<11} submitted={counters['submitted']:<3} "
            f"completed={counters['completed']:<3} rejected={counters['rejected']}"
        )


if __name__ == "__main__":
    asyncio.run(main())
