"""Linear regression on the PM2.5-like dataset via the PINV topology.

Reproduces the Fig. 4(c) workload as an application: fit air-quality
readings against six weather covariates by running the 128 × 6 design
matrix through the analog pseudoinverse circuit, and compare the fitted
weights and residual against numpy's least squares.

Run:  python examples/pm25_regression.py
"""

import numpy as np

from repro import AMCMode, GramcSolver
from repro.analysis.reporting import banner, format_table
from repro.workloads.regression import FEATURE_NAMES, pm25_like


def main() -> None:
    task = pm25_like(rng=np.random.default_rng(25))
    solver = GramcSolver(rng=np.random.default_rng(4))

    # The design matrix becomes a persistent PINV operator: refitting with
    # new targets (fresh sensor readings) re-uses the programmed arrays.
    with solver.compile(task.design, mode=AMCMode.PINV) as operator:
        result = operator.lstsq(task.targets)
    numpy_weights = task.solution()

    print(banner("PM2.5-like regression on the analog pseudoinverse circuit"))
    rows = [
        [name, float(truth), float(ref), float(analog)]
        for name, truth, ref, analog in zip(
            FEATURE_NAMES, task.true_weights, numpy_weights, result.value
        )
    ]
    print(format_table(["feature", "ground truth", "numpy lstsq", "analog PINV"], rows))

    print(
        format_table(
            ["metric", "value"],
            [
                ["L2 error vs numpy", result.relative_error],
                ["residual ‖X·w − y‖ (numpy)", task.residual_norm(numpy_weights)],
                ["residual ‖X·w − y‖ (analog)", task.residual_norm(result.value)],
                ["macros used", len(result.macro_ids)],
                ["auto-range attempts", result.attempts],
            ],
        )
    )
    print(
        "\nThe analog fit lands within a few percent of the optimal "
        "least-squares\nweights in one circuit settling time — no normal-"
        "equation factorisation."
    )


if __name__ == "__main__":
    main()
