"""PageRank on GRAMC — combining the paper's matrix primitives.

PageRank has two classic formulations and GRAMC can run both:

* the *eigen* form ``G·π = π`` (the EGV topology) — fine for small chains,
  but the teleport entries ``(1−d)/n`` fall below the 4-bit quantization
  step once the graph grows;
* the *linear-system* form ``(I − d·M)·π = (1−d)/n·𝟙`` (the INV topology) —
  the teleport moves to the digital right-hand side where it is exact, and
  the array stores only the well-scaled link matrix.  ``repro.apps.markov``
  uses this one, compiling the link system into a scoped
  :class:`~repro.core.operator.AnalogOperator` handle.

This example ranks a 60-node hub-structured random graph and compares the
analog scores with digital power iteration.

Run:  python examples/pagerank.py
"""

import numpy as np

from repro import GramcSolver
from repro.analysis.reporting import banner, format_table
from repro.apps.markov import google_matrix, pagerank


def hub_graph(n: int, out_links: int, rng: np.random.Generator) -> np.ndarray:
    """Random directed graph with preferential attachment (clear hubs)."""
    adjacency = np.zeros((n, n))
    weights = (np.arange(n) + 1.0) ** 2  # high-index nodes are popular
    weights /= weights.sum()
    for source in range(n):
        targets = rng.choice(n, size=out_links, replace=False, p=weights)
        for target in targets:
            if target != source:
                adjacency[target, source] = 1.0
    return adjacency


def main() -> None:
    rng = np.random.default_rng(11)
    adjacency = hub_graph(60, out_links=5, rng=rng)
    solver = GramcSolver(rng=np.random.default_rng(12))

    result = pagerank(solver, adjacency, damping=0.6)

    # Digital reference: power iteration on the same Google matrix.
    g = google_matrix(adjacency, damping=0.6)
    pi = np.full(g.shape[0], 1.0 / g.shape[0])
    for _ in range(200):
        pi = g @ pi

    analog_top = np.argsort(result.distribution)[::-1][:8]
    digital_top = np.argsort(pi)[::-1][:8]

    print(banner("PageRank via the analog INV topology (60-node hub graph)"))
    rows = [
        [rank + 1, int(d), float(pi[d]), int(a), float(result.distribution[a])]
        for rank, (d, a) in enumerate(zip(digital_top, analog_top))
    ]
    print(format_table(["rank", "digital node", "score", "analog node", "score"], rows))
    overlap = len(set(analog_top.tolist()) & set(digital_top.tolist()))
    print(
        format_table(
            ["metric", "value"],
            [
                ["total-variation error", result.total_variation_error],
                ["stationarity residual ‖Pπ − π‖₁", result.residual],
                ["top-8 overlap", f"{overlap}/8"],
            ],
        )
    )
    print(
        "\nThe teleport term lives on the digital right-hand side (exact); "
        "the analog\narray solves the 60-unknown link system in one settling "
        "time — the paper's\n'combining matrix primitives' claim in action."
    )


if __name__ == "__main__":
    main()
