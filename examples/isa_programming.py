"""Programming GRAMC at the instruction level (the paper's Fig. 3 flow).

The other examples use the high-level solver; this one drives the chip the
way its digital controller actually works: stage operands and configuration
words in the global buffer, assemble a program, and let the controller walk
the write-verify and system-solution data paths instruction by instruction.

The program implements one neural-network layer: y = relu(W·x) with the
matrix on one macro (paired-column differential layout).

Run:  python examples/isa_programming.py
"""

import numpy as np

from repro.analog.topologies import AMCMode
from repro.analysis.reporting import banner, format_table
from repro.arrays.mapping import DifferentialMapping
from repro.core.pool import PoolConfig
from repro.macro.registers import MacroConfig, PlaneLayout, encode, g_f_code_for
from repro.system.assembler import disassemble
from repro.system.gramc import GramcChip

ASSEMBLY = """
; --- one neural-network layer on GRAMC ------------------------------
    CFG  m0, 0          ; load the macro configuration word
    WRV  m0, 16, 512    ; write-verify the 16x32 conductance tile
    BNE  fail           ; CU flag: all cells inside the verify band?
    EXE  m0, 600, 16    ; analog MVM on the staged input vector
    MOVO m0, 700, 16    ; output buffer -> global buffer
    RELU 700, 16        ; digital functional module: activation
    HALT
fail:
    HALT
"""


def main() -> None:
    chip = GramcChip(PoolConfig(num_macros=4, rows=32, cols=32), rng=np.random.default_rng(0))

    # Weights for a 16→16 layer, mapped to differential conductance planes.
    rng = np.random.default_rng(1)
    weights = rng.uniform(-1.0, 1.0, size=(16, 16))
    mapping = DifferentialMapping.from_matrix(weights)

    # Stage the configuration word: MVM mode, 16 rows × 32 physical columns
    # (paired-column layout).  At the ISA level the programmer owns output
    # ranging: g_f = 100 µS puts |W·x| voltages in the middle of the ADC
    # range for ±0.3 V inputs (the high-level solver automates this).
    config = MacroConfig(
        mode=AMCMode.MVM, rows=16, cols=32, g_f_code=g_f_code_for(1e-4),
        layout=PlaneLayout.PAIRED_COLUMNS,
    )
    chip.write_config_word(0, encode(config))

    # Stage the conductance targets (interleaved planes) and the input.
    tile = np.empty((16, 32))
    tile[:, 0::2] = mapping.g_pos
    tile[:, 1::2] = mapping.g_neg
    chip.write_operand(16, tile.ravel())
    x = rng.uniform(-0.3, 0.3, 16)
    chip.write_operand(600, x)

    program = chip.load_assembly(ASSEMBLY)
    print(banner("Controller program"))
    print(disassemble(program))

    trace = chip.run()
    outputs = chip.read_result(700, 16)

    g_f = chip.macros[0].config.g_f
    expected = np.maximum(-(weights @ x) / (g_f * mapping.value_scale), 0.0)

    print(banner("Execution"))
    print(
        format_table(
            ["metric", "value"],
            [
                ["instructions executed", trace.instructions_executed],
                ["halted cleanly", trace.halted],
                ["cells programmed", chip.stats.cells_programmed],
                ["estimated energy (J)", chip.stats.estimated_energy()],
                ["estimated latency (s)", chip.stats.estimated_latency()],
            ],
        )
    )
    print(banner("relu(W·x): analog vs numpy (first 8 outputs)"))
    rows = [[i, float(expected[i]), float(outputs[i])] for i in range(8)]
    print(format_table(["row", "numpy", "GRAMC"], rows))


if __name__ == "__main__":
    main()
