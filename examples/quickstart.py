"""Quickstart: the four matrix functions of GRAMC in ten minutes.

Demonstrates the paper's headline capability — one reconfigurable analog
system computing MVM, INV, PINV and EGV — through the **operator-handle**
API: :meth:`repro.GramcSolver.compile` programs a matrix onto the RRAM
macros once and returns an :class:`repro.AnalogOperator` that is applied
many times (``op @ x`` with vectors *and* batches, ``op.solve``,
``op.lstsq``, ``op.eigvec``) with zero re-programming between calls.
Handles are context managers: leaving the ``with`` block returns the
macros to the 16-macro pool.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AMCMode, GramcSolver
from repro.analysis.metrics import cosine_similarity
from repro.analysis.reporting import banner, format_table
from repro.workloads.matrices import gram, wishart


def main() -> None:
    rng = np.random.default_rng(0)
    solver = GramcSolver(rng=rng)

    rows = []

    # 1. MVM — compile once, stream vector and batched right-hand sides.
    matrix = wishart(32, rng=rng)
    op = solver.compile(matrix)               # programmed + resident
    y = op @ rng.uniform(-1.0, 1.0, 32)       # single vector
    batch = op @ rng.uniform(-1.0, 1.0, (32, 16))  # 16 RHS, same conductances
    result = op.mvm(rng.uniform(-1.0, 1.0, 32))    # full diagnostics
    assert y.shape == (32,) and batch.shape == (32, 16)
    rows.append(["MVM  A·x (32×32, batched)", result.relative_error, result.ok])

    # 2. INV — one-step linear solve A·y = b, handle scoped by `with`.
    spd = matrix + 0.5 * np.eye(32)
    b = rng.uniform(-1.0, 1.0, 32)
    with solver.compile(spd, mode=AMCMode.INV) as inv:
        result = inv.solve(b)
    rows.append(["INV  A·y = b", result.relative_error, result.ok])

    # 3. PINV — least squares min ‖A·y − b‖ on a tall matrix.
    tall = rng.standard_normal((48, 6))
    b_tall = rng.uniform(-1.0, 1.0, 48)
    with solver.compile(tall, mode=AMCMode.PINV) as pinv:
        result = pinv.lstsq(b_tall)
    rows.append(["PINV least squares (48×6)", result.relative_error, result.ok])

    # 4. EGV — dominant eigenvector of a Gram matrix.
    psd = gram(rng.standard_normal((32, 5)))
    with solver.compile(psd, mode=AMCMode.EGV) as egv:
        result = egv.eigvec()
    cosine = cosine_similarity(result.value, result.reference)
    rows.append(["EGV  dominant eigenvector", 1.0 - cosine, result.ok])

    print(banner("GRAMC quickstart — all four functions on one chip"))
    print(format_table(["operation", "error vs numpy", "electrically ok"], rows))
    print(
        "\nEvery operation above ran on the same pool of sixteen 128×128 "
        "RRAM macros,\nreconfigured per operation by the register array — "
        "the paper's central claim.\nThe MVM handle stayed programmed across "
        f"{1 + 16 + 1} right-hand sides (programmed ×{op.program_count})."
    )


if __name__ == "__main__":
    main()
