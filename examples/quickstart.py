"""Quickstart: the four matrix functions of GRAMC in ten minutes.

Demonstrates the paper's headline capability — one reconfigurable analog
system computing MVM, INV, PINV and EGV — through the high-level
:class:`repro.GramcSolver` API.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import GramcSolver
from repro.analysis.metrics import cosine_similarity
from repro.analysis.reporting import banner, format_table
from repro.workloads.matrices import gram, wishart


def main() -> None:
    rng = np.random.default_rng(0)
    solver = GramcSolver(rng=rng)

    rows = []

    # 1. MVM — matrix-vector multiplication (the neural-network primitive).
    matrix = wishart(32, rng=rng)
    x = rng.uniform(-1.0, 1.0, 32)
    result = solver.mvm(matrix, x)
    rows.append(["MVM  A·x (32×32 Wishart)", result.relative_error, result.ok])

    # 2. INV — one-step linear solve A·y = b.
    spd = matrix + 0.5 * np.eye(32)
    b = rng.uniform(-1.0, 1.0, 32)
    result = solver.solve(spd, b)
    rows.append(["INV  A·y = b", result.relative_error, result.ok])

    # 3. PINV — least squares min ‖A·y − b‖ on a tall matrix.
    tall = rng.standard_normal((48, 6))
    b_tall = rng.uniform(-1.0, 1.0, 48)
    result = solver.lstsq(tall, b_tall)
    rows.append(["PINV least squares (48×6)", result.relative_error, result.ok])

    # 4. EGV — dominant eigenvector of a Gram matrix.
    psd = gram(rng.standard_normal((32, 5)))
    result = solver.eigvec(psd)
    cosine = cosine_similarity(result.value, result.reference)
    rows.append(["EGV  dominant eigenvector", 1.0 - cosine, result.ok])

    print(banner("GRAMC quickstart — all four functions on one chip"))
    print(format_table(["operation", "error vs numpy", "electrically ok"], rows))
    print(
        "\nEvery operation above ran on the same pool of sixteen 128×128 "
        "RRAM macros,\nreconfigured per operation by the register array — "
        "the paper's central claim."
    )


if __name__ == "__main__":
    main()
