"""Tracing a solve: spans from the serve window down to refine steps.

Enables tracing on a :class:`~repro.system.GramcChip`
(``trace="memory,chrome:..."`` — the same specs ``REPRO_TRACE`` takes),
runs a mixed-tenant serve window over a 256×256 blocked operator with
one tenant contracting ``rtol`` refinement, then:

* writes ``trace_solve.json`` — a Chrome ``trace_event`` document; open
  it at https://ui.perfetto.dev (or ``chrome://tracing``) to see the
  ``serve_window → dispatch → solve → sweep / refine_step`` flamegraph
  across the event-loop and chip-executor threads;
* prints each request's time/energy breakdown
  (:func:`repro.obs.report.solve_breakdown`) — where the solve actually
  went: analog settling, conversions, digital engine, refinement, queue
  wait;
* dumps a few lines of the chip's unified metrics registry in Prometheus
  text format — the same cells ``chip.stats.summary()`` reads.

Run:  python examples/tracing_a_solve.py
"""

import asyncio
from pathlib import Path

import numpy as np

from repro import AMCMode
from repro.analysis.reporting import banner
from repro.core.pool import PoolConfig
from repro.obs import trace
from repro.programming.levels import LevelMap
from repro.obs.export import prometheus_text
from repro.obs.report import format_breakdown, solve_breakdown
from repro.serve import ServeConfig, TenantQuota
from repro.system import GramcChip
from repro.workloads.matrices import block_dominant

TRACE_PATH = Path(__file__).resolve().parent / "trace_solve.json"


async def main() -> None:
    rng = np.random.default_rng(7)
    # An 8-bit level map keeps the analog floor low enough for iterative
    # refinement to converge (same sizing as the refinement benchmark).
    chip = GramcChip(
        pool_config=PoolConfig(level_map=LevelMap(num_levels=256)),
        rng=np.random.default_rng(11),
        trace=f"memory,chrome:{TRACE_PATH}",
    )
    service = chip.serve(ServeConfig(window_s=0.005, max_pending=64))
    service.register_tenant("ranker", TenantQuota(max_pending=16, priority=1))
    service.register_tenant("telemetry", TenantQuota(max_pending=8))

    n = 256
    matrix = block_dominant(n, 128, coupling=0.02, rng=rng)
    async with service:
        op = await service.compile("ranker", matrix, AMCMode.INV)
        batch = rng.uniform(-1.0, 1.0, (n, 4))
        # One dispatch window, two tenants, one coalesced engine call:
        # the ranker refines to 1e-8, telemetry rides the analog step.
        refined, plain = await asyncio.gather(
            service.solve("ranker", op, batch, rtol=1e-8),
            service.solve("telemetry", op, rng.uniform(-1.0, 1.0, n)),
        )

    tracer = trace.get_tracer()
    tracer.close()  # flush the Chrome trace to disk
    spans = tracer.spans()

    print(banner("GRAMC traced solve — spans, breakdown, metrics"))
    counts: dict[str, int] = {}
    for span in spans:
        counts[span.name] = counts.get(span.name, 0) + 1
    print(f"{len(spans)} spans recorded: " + ", ".join(
        f"{name}×{count}" for name, count in sorted(counts.items())
    ))
    print(f"\nPerfetto-loadable trace written to {TRACE_PATH.name}")
    print("  -> open https://ui.perfetto.dev and drop the file in\n")

    print(f"ranker's refined solve ({refined.refine_steps} refine steps, "
          f"residual {refined.refined_residual:.1e}):\n")
    print(format_breakdown(solve_breakdown(refined)))
    print(f"\ntelemetry's unrefined sibling (same window, same engine call, "
          f"queue wait {plain.cost.queue_wait_s * 1e3:.1f} ms):\n")
    print(format_breakdown(solve_breakdown(plain)))

    print("\nunified registry, Prometheus text format (excerpt):")
    lines = prometheus_text(chip.stats.registry).splitlines()
    for line in lines[:12]:
        print(f"  {line}")
    print(f"  ... ({len(lines)} lines total)")


if __name__ == "__main__":
    asyncio.run(main())
