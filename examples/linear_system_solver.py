"""Solving linear systems with analog seeds + digital refinement.

The paper (§III) notes that AMC results "may be used as seed solutions to
speed up the convergence towards precise final solutions."  This example
makes that workflow concrete in two parts:

1. a 128-unknown SPD system is solved in one analog step (~10–30 %
   error), then polished to machine precision with two digital
   iterative-refinement sweeps — versus the cold-start iteration count a
   purely digital conjugate-gradient solver needs;
2. a **256-unknown** system — twice the array size — is solved through
   the blocked tile-grid engine: ``solver.compile`` returns a
   ``TiledOperator`` whose diagonal blocks invert in-array and whose
   couplings sweep as analog MVMs, with a reported residual floor.

Run:  python examples/linear_system_solver.py
"""

import numpy as np

from repro import AMCMode, GramcSolver
from repro.analysis.reporting import banner, format_table
from repro.system.functional import iterative_refinement
from repro.workloads.matrices import block_dominant, wishart


def conjugate_gradient_iterations(matrix, b, x0, tolerance=1e-8, max_iterations=500):
    """CG iteration count from a given start (the digital comparison)."""
    x = x0.copy()
    r = b - matrix @ x
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = float(np.linalg.norm(b))
    for iteration in range(max_iterations):
        if np.sqrt(rs_old) / b_norm < tolerance:
            return iteration
        ap = matrix @ p
        alpha = rs_old / float(p @ ap)
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
    return max_iterations


def main() -> None:
    rng = np.random.default_rng(3)
    matrix = wishart(128, rng=rng) + 0.4 * np.eye(128)
    b = rng.uniform(-1.0, 1.0, 128)
    exact = np.linalg.solve(matrix, b)

    solver = GramcSolver(rng=rng)
    # One programmed INV operator serves every seed solve on this system.
    with solver.compile(matrix, mode=AMCMode.INV) as operator:
        analog = operator.solve(b)
    seed_error = np.linalg.norm(analog.value - exact) / np.linalg.norm(exact)

    refined = iterative_refinement(matrix, b, analog.value, iterations=2)
    refined_error = np.linalg.norm(refined - exact) / np.linalg.norm(exact)

    cg_cold = conjugate_gradient_iterations(matrix, b, np.zeros(128))
    cg_seeded = conjugate_gradient_iterations(matrix, b, analog.value)

    print(banner("Analog seed solutions for linear systems (paper §III)"))
    print(
        format_table(
            ["stage", "relative error / iterations"],
            [
                ["analog one-step solve (seed)", seed_error],
                ["after 2 digital refinement sweeps", refined_error],
                ["CG iterations, cold start", cg_cold],
                ["CG iterations, analog-seeded", cg_seeded],
            ],
        )
    )
    saved = cg_cold - cg_seeded
    print(
        f"\nThe analog seed removes {saved} of {cg_cold} conjugate-gradient "
        f"iterations ({100.0 * saved / cg_cold:.0f}% of the digital work)."
    )

    blocked_demo(rng, solver)


def blocked_demo(rng: np.random.Generator, solver: GramcSolver) -> None:
    """Part 2: a system twice the array size on a 2×2 tile grid."""
    n = 256
    matrix = block_dominant(n, solver.pool.config.rows, rng=rng)
    b = rng.uniform(-1.0, 1.0, n)
    exact = np.linalg.solve(matrix, b)

    # compile() sees a square SOLVE operand larger than one array and
    # returns a TiledOperator: INV diagonal tiles + MVM coupling tiles,
    # programmed once and pinned for the handle's lifetime.
    with solver.compile(matrix, mode=AMCMode.INV) as operator:
        result = operator.solve(b)
        grid = operator.grid
        macros = operator.macros
    blocked_error = np.linalg.norm(result.value - exact) / np.linalg.norm(exact)
    refined = iterative_refinement(matrix, b, result.value, iterations=2)
    refined_error = np.linalg.norm(refined - exact) / np.linalg.norm(exact)

    print(banner("Beyond one array: blocked solve on a tile grid"))
    print(
        format_table(
            ["quantity", "value"],
            [
                ["unknowns / tile grid", f"{n} on {grid[0]}x{grid[1]} ({macros} macros)"],
                ["block sweeps run", result.sweeps],
                ["analog residual floor (O(eta*kappa))", result.residual_floor],
                ["blocked solve relative error", blocked_error],
                ["after 2 digital refinement sweeps", refined_error],
            ],
        )
    )
    print(
        "\nThe grid is programmed once: repeated solves perform zero "
        "reprogramming events, and every per-tile step streams all "
        "right-hand-side columns through one batched engine call."
    )


if __name__ == "__main__":
    main()
