"""LeNet-5 digit recognition on GRAMC — the paper's Fig. 5 application.

Trains the float32 network on SynthDigits (the offline MNIST substitute),
deploys it on the analog system at INT4 and bit-sliced INT8, and prints
the accuracy comparison.  A smaller run than the benchmark, sized to finish
in about a minute.

Run:  python examples/lenet5_digits.py
"""

import numpy as np

from repro.analysis.reporting import banner, format_table
from repro.core.pool import MacroPool, PoolConfig
from repro.core.solver import GramcSolver
from repro.nn.analog_inference import AnalogLeNet5
from repro.nn.datasets import synth_digits
from repro.nn.lenet5 import LeNet5
from repro.nn.train import train_lenet5


def make_solver(seed: int) -> GramcSolver:
    return GramcSolver(
        pool=MacroPool(PoolConfig(), rng=np.random.default_rng(seed)),
        rng=np.random.default_rng(seed),
    )


def main() -> None:
    print("Rendering SynthDigits …")
    train = synth_digits(3000, rng=np.random.default_rng(1), difficulty=1.2)
    test = synth_digits(500, rng=np.random.default_rng(2), difficulty=1.2)

    print("Training float32 LeNet-5 (3 epochs) …")
    model = LeNet5(np.random.default_rng(5))
    report = train_lenet5(
        model, train, test, epochs=3, rng=np.random.default_rng(6), verbose=True
    )

    print("Deploying on the analog system …")
    # Deployment compiles each weight layer into a persistent AnalogOperator;
    # the `with` block releases every layer's macros when inference is done.
    with AnalogLeNet5(model, make_solver(9), bits=4) as int4:
        int4_accuracy = int4.accuracy(test.images, test.labels)
    with AnalogLeNet5(model, make_solver(10), bits=8) as int8:
        int8_accuracy = int8.accuracy(test.images, test.labels)

    print(banner("LeNet-5 on GRAMC (500 SynthDigits test images)"))
    print(
        format_table(
            ["deployment", "accuracy"],
            [
                ["float32 (digital reference)", report.final_accuracy],
                ["INT8, bit-sliced, analog conv+fc", int8_accuracy],
                ["INT4, analog conv+fc", int4_accuracy],
            ],
        )
    )
    print(
        "\nEvery convolution and fully-connected layer ran as analog MVMs on "
        "the RRAM\nmacros; pooling, ReLU, biases and argmax ran in the digital "
        "functional module,\nexactly as the paper's Fig. 5 pipeline describes."
    )


if __name__ == "__main__":
    main()
